//! Arbitrary-width bit vectors.
//!
//! [`Bv`] is the value representation shared by every part of the system:
//! the FIRRTL constant folder, all three software simulators, the emulated
//! FPGA host and the bit-blaster of the formal backend. Values are stored as
//! little-endian `u64` words with all bits above `width` kept at zero.
//!
//! Widths are explicit and operations follow FIRRTL semantics: `add`/`sub`
//! grow by one bit, `mul` produces the sum of the operand widths, comparisons
//! return a 1-bit value, and so on. Helpers that would be nonsensical for a
//! hardware value (like negative widths) simply cannot be expressed.

use std::fmt;

/// Number of bits per storage word.
const WORD_BITS: u32 = 64;

/// An unsigned bit vector of a fixed, explicit width.
///
/// The two's complement interpretation used by FIRRTL `SInt` operations is
/// provided through the `*_signed` methods; the storage is always the raw
/// bit pattern.
///
/// ```
/// use rtlcov_firrtl::bv::Bv;
/// let a = Bv::from_u64(5, 8);
/// let b = Bv::from_u64(250, 8);
/// assert_eq!(a.add(&b).to_u64(), 255); // result width 9, no overflow
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bv {
    width: u32,
    words: Vec<u64>,
}

fn words_for(width: u32) -> usize {
    (width.div_ceil(WORD_BITS)).max(1) as usize
}

impl Bv {
    /// The all-zeros value of the given width.
    pub fn zero(width: u32) -> Self {
        Bv {
            width,
            words: vec![0; words_for(width)],
        }
    }

    /// The all-ones value of the given width.
    pub fn ones(width: u32) -> Self {
        let mut v = Bv {
            width,
            words: vec![u64::MAX; words_for(width)],
        };
        v.mask_top();
        v
    }

    /// Construct from a `u64`, truncating to `width` bits.
    pub fn from_u64(value: u64, width: u32) -> Self {
        let mut v = Bv::zero(width);
        v.words[0] = value;
        v.mask_top();
        v
    }

    /// Construct from a `u128`, truncating to `width` bits.
    pub fn from_u128(value: u128, width: u32) -> Self {
        let mut v = Bv::zero(width);
        v.words[0] = value as u64;
        if v.words.len() > 1 {
            v.words[1] = (value >> 64) as u64;
        }
        v.mask_top();
        v
    }

    /// Construct from a signed integer using two's complement at `width`.
    pub fn from_i64(value: i64, width: u32) -> Self {
        let mut v = Bv {
            width,
            words: vec![value as u64; 1],
        };
        if words_for(width) > 1 {
            let ext = if value < 0 { u64::MAX } else { 0 };
            v.words.resize(words_for(width), ext);
        }
        v.mask_top();
        v
    }

    /// Construct a single bit.
    pub fn bit_value(bit: bool) -> Self {
        Bv::from_u64(bit as u64, 1)
    }

    /// Parse a decimal string into a value of the given width.
    ///
    /// # Errors
    ///
    /// Returns `None` if the string contains non-decimal characters.
    pub fn from_decimal(s: &str, width: u32) -> Option<Self> {
        let mut v = Bv::zero(width.max(1));
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        if digits.is_empty() {
            return None;
        }
        for c in digits.chars() {
            let d = c.to_digit(10)?;
            v = v.mul_small_wrapping(10).add_small_wrapping(d as u64);
        }
        if neg {
            v = v.negate_wrapping();
        }
        v.mask_top();
        Some(v)
    }

    /// Parse from a radix-prefixed literal body (`h`, `o`, `b` or decimal).
    pub fn from_radix_str(s: &str, width: u32) -> Option<Self> {
        if let Some(hex) = s.strip_prefix('h') {
            let mut v = Bv::zero(width.max(1));
            for c in hex.chars() {
                let d = c.to_digit(16)?;
                v = v.shl_wrapping(4).add_small_wrapping(d as u64);
            }
            v.mask_top();
            Some(v)
        } else if let Some(bin) = s.strip_prefix('b') {
            let mut v = Bv::zero(width.max(1));
            for c in bin.chars() {
                let d = c.to_digit(2)?;
                v = v.shl_wrapping(1).add_small_wrapping(d as u64);
            }
            v.mask_top();
            Some(v)
        } else if let Some(oct) = s.strip_prefix('o') {
            let mut v = Bv::zero(width.max(1));
            for c in oct.chars() {
                let d = c.to_digit(8)?;
                v = v.shl_wrapping(3).add_small_wrapping(d as u64);
            }
            v.mask_top();
            Some(v)
        } else {
            Bv::from_decimal(s, width)
        }
    }

    /// Bit width of this value.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// True if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The value of bit `i` (little endian). Bits past the width read zero.
    pub fn bit(&self, i: u32) -> bool {
        let word = (i / WORD_BITS) as usize;
        if word >= self.words.len() {
            return false;
        }
        (self.words[word] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Set bit `i` to `b`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn set_bit(&mut self, i: u32, b: bool) {
        assert!(
            i < self.width.max(1),
            "bit index {i} out of range for width {}",
            self.width
        );
        let word = (i / WORD_BITS) as usize;
        let mask = 1u64 << (i % WORD_BITS);
        if b {
            self.words[word] |= mask;
        } else {
            self.words[word] &= !mask;
        }
    }

    /// The low 64 bits of the value.
    pub fn to_u64(&self) -> u64 {
        self.words[0]
    }

    /// The low 128 bits of the value.
    pub fn to_u128(&self) -> u128 {
        let lo = self.words[0] as u128;
        let hi = if self.words.len() > 1 {
            self.words[1] as u128
        } else {
            0
        };
        lo | (hi << 64)
    }

    /// Two's complement interpretation as `i64` (for widths ≤ 64).
    pub fn to_i64(&self) -> i64 {
        if self.width == 0 {
            return 0;
        }
        let raw = self.words[0];
        if self.width >= 64 {
            raw as i64
        } else if self.bit(self.width - 1) {
            (raw | (u64::MAX << self.width)) as i64
        } else {
            raw as i64
        }
    }

    /// The sign bit under two's complement interpretation.
    pub fn sign_bit(&self) -> bool {
        self.width > 0 && self.bit(self.width - 1)
    }

    /// Underlying words (little endian), mainly for the bit-blaster.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    fn mask_top(&mut self) {
        let need = words_for(self.width);
        self.words.truncate(need);
        while self.words.len() < need {
            self.words.push(0);
        }
        if self.width == 0 {
            self.words[0] = 0;
            return;
        }
        let rem = self.width % WORD_BITS;
        if rem != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << rem) - 1;
        }
    }

    fn add_small_wrapping(mut self, v: u64) -> Self {
        let mut carry = v;
        for w in self.words.iter_mut() {
            let (s, c) = w.overflowing_add(carry);
            *w = s;
            carry = c as u64;
            if carry == 0 {
                break;
            }
        }
        self.mask_top();
        self
    }

    fn mul_small_wrapping(mut self, v: u64) -> Self {
        let mut carry: u128 = 0;
        for w in self.words.iter_mut() {
            let p = (*w as u128) * (v as u128) + carry;
            *w = p as u64;
            carry = p >> 64;
        }
        self.mask_top();
        self
    }

    fn shl_wrapping(mut self, by: u32) -> Self {
        if by == 0 || self.width == 0 {
            return self;
        }
        let word_shift = (by / WORD_BITS) as usize;
        let bit_shift = by % WORD_BITS;
        let n = self.words.len();
        for i in (0..n).rev() {
            let mut val = 0u64;
            if i >= word_shift {
                val = self.words[i - word_shift] << bit_shift;
                if bit_shift > 0 && i > word_shift {
                    val |= self.words[i - word_shift - 1] >> (WORD_BITS - bit_shift);
                }
            }
            self.words[i] = val;
        }
        self.mask_top();
        self
    }

    fn negate_wrapping(&self) -> Self {
        let mut v = self.clone();
        for w in v.words.iter_mut() {
            *w = !*w;
        }
        v.mask_top();
        v.add_small_wrapping(1)
    }

    /// Zero-extend or truncate to a new width.
    pub fn resize_zext(&self, width: u32) -> Self {
        let mut v = self.clone();
        v.width = width;
        v.words.resize(words_for(width), 0);
        v.mask_top();
        v
    }

    /// Sign-extend (two's complement) or truncate to a new width.
    pub fn resize_sext(&self, width: u32) -> Self {
        if width <= self.width || !self.sign_bit() {
            return self.resize_zext(width);
        }
        let mut v = self.resize_zext(width);
        for i in self.width..width {
            v.set_bit(i, true);
        }
        v
    }

    /// FIRRTL `add`: result width `max(w_a, w_b) + 1`, never overflows.
    pub fn add(&self, other: &Bv) -> Self {
        let w = self.width.max(other.width) + 1;
        let a = self.resize_zext(w);
        let b = other.resize_zext(w);
        a.add_raw(&b)
    }

    /// Signed FIRRTL `add` (operands sign-extended).
    pub fn add_signed(&self, other: &Bv) -> Self {
        let w = self.width.max(other.width) + 1;
        let a = self.resize_sext(w);
        let b = other.resize_sext(w);
        a.add_raw(&b)
    }

    fn add_raw(&self, other: &Bv) -> Self {
        debug_assert_eq!(self.width, other.width);
        let mut v = self.clone();
        let mut carry = 0u64;
        for (w, o) in v.words.iter_mut().zip(other.words.iter()) {
            let (s1, c1) = w.overflowing_add(*o);
            let (s2, c2) = s1.overflowing_add(carry);
            *w = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        v.mask_top();
        v
    }

    /// FIRRTL `sub`: result width `max(w_a, w_b) + 1` (two's complement).
    pub fn sub(&self, other: &Bv) -> Self {
        let w = self.width.max(other.width) + 1;
        let a = self.resize_zext(w);
        let b = other.resize_zext(w);
        a.add_raw(&b.negate_wrapping())
    }

    /// Signed FIRRTL `sub`.
    pub fn sub_signed(&self, other: &Bv) -> Self {
        let w = self.width.max(other.width) + 1;
        let a = self.resize_sext(w);
        let b = other.resize_sext(w);
        a.add_raw(&b.negate_wrapping())
    }

    /// FIRRTL `mul`: result width `w_a + w_b`.
    pub fn mul(&self, other: &Bv) -> Self {
        let w = self.width + other.width;
        let mut out = Bv::zero(w);
        for (i, &aw) in self.words.iter().enumerate() {
            if aw == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for (j, &bw) in other.words.iter().enumerate() {
                let k = i + j;
                if k >= out.words.len() {
                    break;
                }
                let p = (aw as u128) * (bw as u128) + (out.words[k] as u128) + carry;
                out.words[k] = p as u64;
                carry = p >> 64;
            }
            let mut k = i + other.words.len();
            while carry > 0 && k < out.words.len() {
                let p = (out.words[k] as u128) + carry;
                out.words[k] = p as u64;
                carry = p >> 64;
                k += 1;
            }
        }
        out.mask_top();
        out
    }

    /// Signed FIRRTL `mul` (two's complement operands).
    pub fn mul_signed(&self, other: &Bv) -> Self {
        let w = self.width + other.width;
        let a_neg = self.sign_bit();
        let b_neg = other.sign_bit();
        let a = if a_neg {
            self.negate_wrapping()
        } else {
            self.clone()
        };
        let b = if b_neg {
            other.negate_wrapping()
        } else {
            other.clone()
        };
        let m = a.mul(&b);
        if a_neg != b_neg {
            m.negate_wrapping().resize_zext(w)
        } else {
            m
        }
    }

    /// Unsigned division; division by zero yields zero (FIRRTL leaves it
    /// undefined, Chisel simulators conventionally return 0).
    pub fn div(&self, other: &Bv) -> Self {
        self.divrem(other).0.resize_zext(self.width)
    }

    /// Unsigned remainder; remainder by zero yields zero.
    pub fn rem(&self, other: &Bv) -> Self {
        self.divrem(other)
            .1
            .resize_zext(self.width.min(other.width).max(1))
    }

    fn divrem(&self, other: &Bv) -> (Bv, Bv) {
        let w = self.width.max(1);
        if other.is_zero() {
            return (Bv::zero(w), Bv::zero(w));
        }
        if self.width <= 128 && other.width <= 128 {
            let a = self.to_u128();
            let b = other.to_u128();
            return (Bv::from_u128(a / b, w), Bv::from_u128(a % b, w));
        }
        // Schoolbook restoring division over bits.
        let mut quo = Bv::zero(w);
        let mut rem = Bv::zero(w + 1);
        let divisor = other.resize_zext(w + 1);
        for i in (0..w).rev() {
            rem = rem.shl_wrapping(1);
            if self.bit(i) {
                rem.words[0] |= 1;
            }
            if !rem.ult(&divisor) {
                rem = rem.add_raw(&divisor.negate_wrapping());
                quo.set_bit(i, true);
            }
        }
        (quo, rem.resize_zext(w))
    }

    /// Unsigned less-than.
    pub fn ult(&self, other: &Bv) -> bool {
        let w = self.width.max(other.width);
        let a = self.resize_zext(w);
        let b = other.resize_zext(w);
        for i in (0..a.words.len()).rev() {
            if a.words[i] != b.words[i] {
                return a.words[i] < b.words[i];
            }
        }
        false
    }

    /// Signed (two's complement) less-than.
    pub fn slt(&self, other: &Bv) -> bool {
        match (self.sign_bit(), other.sign_bit()) {
            (true, false) => true,
            (false, true) => false,
            _ => {
                let w = self.width.max(other.width);
                self.resize_sext(w).ult(&other.resize_sext(w))
            }
        }
    }

    /// Bitwise and; operands zero-extended to the max width.
    pub fn and(&self, other: &Bv) -> Self {
        self.bitwise(other, |a, b| a & b)
    }

    /// Bitwise or.
    pub fn or(&self, other: &Bv) -> Self {
        self.bitwise(other, |a, b| a | b)
    }

    /// Bitwise xor.
    pub fn xor(&self, other: &Bv) -> Self {
        self.bitwise(other, |a, b| a ^ b)
    }

    fn bitwise(&self, other: &Bv, f: impl Fn(u64, u64) -> u64) -> Self {
        let w = self.width.max(other.width);
        let a = self.resize_zext(w);
        let b = other.resize_zext(w);
        let mut out = a;
        for (x, y) in out.words.iter_mut().zip(b.words.iter()) {
            *x = f(*x, *y);
        }
        out.mask_top();
        out
    }

    /// Bitwise not at the same width.
    pub fn not(&self) -> Self {
        let mut v = self.clone();
        for w in v.words.iter_mut() {
            *w = !*w;
        }
        v.mask_top();
        v
    }

    /// Reduction and/or/xor returning a single bit.
    pub fn reduce_and(&self) -> bool {
        *self == Bv::ones(self.width)
    }

    /// True if any bit is set.
    pub fn reduce_or(&self) -> bool {
        !self.is_zero()
    }

    /// Parity of the set bits.
    pub fn reduce_xor(&self) -> bool {
        self.words.iter().map(|w| w.count_ones()).sum::<u32>() % 2 == 1
    }

    /// Static left shift: width grows by `by`.
    pub fn shl(&self, by: u32) -> Self {
        let mut v = self.resize_zext(self.width + by);
        v = v.shl_wrapping(by);
        v
    }

    /// Static logical right shift: width shrinks by `by` (min 1).
    pub fn shr(&self, by: u32) -> Self {
        let new_w = self.width.saturating_sub(by).max(1);
        let mut out = Bv::zero(new_w);
        for i in 0..new_w {
            if self.bit(i + by) {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Arithmetic static right shift for signed values.
    pub fn shr_signed(&self, by: u32) -> Self {
        let new_w = self.width.saturating_sub(by).max(1);
        let sign = self.sign_bit();
        let mut out = Bv::zero(new_w);
        for i in 0..new_w {
            let src = i + by;
            let b = if src < self.width {
                self.bit(src)
            } else {
                sign
            };
            if b {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Dynamic left shift by the value of `amount` (FIRRTL `dshl`): result
    /// width `w + 2^amount_width - 1`, capped to keep memory bounded.
    pub fn dshl(&self, amount: &Bv, result_width: u32) -> Self {
        let shift = amount.to_u64().min(result_width as u64) as u32;
        let mut v = self.resize_zext(result_width);
        v = v.shl_wrapping(shift);
        v
    }

    /// Dynamic logical right shift.
    pub fn dshr(&self, amount: &Bv) -> Self {
        let shift = amount.to_u64().min(self.width as u64) as u32;
        let mut out = Bv::zero(self.width);
        for i in 0..self.width.saturating_sub(shift) {
            if self.bit(i + shift) {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Dynamic arithmetic right shift for signed values.
    pub fn dshr_signed(&self, amount: &Bv) -> Self {
        let shift = amount.to_u64().min(self.width as u64) as u32;
        self.resize_sext(self.width + shift)
            .shr_signed(shift)
            .resize_zext(self.width)
    }

    /// Concatenation: `self` becomes the high bits.
    pub fn cat(&self, low: &Bv) -> Self {
        let w = self.width + low.width;
        let mut out = low.resize_zext(w);
        let hi = self.resize_zext(w).shl_wrapping(low.width);
        for (o, h) in out.words.iter_mut().zip(hi.words.iter()) {
            *o |= h;
        }
        out.mask_top();
        out
    }

    /// Bit extraction `bits(hi, lo)` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo`.
    pub fn bits(&self, hi: u32, lo: u32) -> Self {
        assert!(hi >= lo, "bits({hi}, {lo}) with hi < lo");
        let w = hi - lo + 1;
        let mut out = Bv::zero(w);
        for i in 0..w {
            if self.bit(lo + i) {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }
}

impl fmt::Debug for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bv<{}>(", self.width)?;
        fmt::LowerHex::fmt(self, f)?;
        write!(f, ")")
    }
}

impl fmt::Display for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width <= 128 {
            write!(f, "{}", self.to_u128())
        } else {
            write!(f, "0x")?;
            fmt::LowerHex::fmt(self, f)
        }
    }
}

impl fmt::LowerHex for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut started = false;
        for w in self.words.iter().rev() {
            if started {
                write!(f, "{w:016x}")?;
            } else if *w != 0 || std::ptr::eq(w, &self.words[0]) {
                write!(f, "{w:x}")?;
                started = true;
            }
        }
        Ok(())
    }
}

impl fmt::Binary for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width.max(1)).rev() {
            write!(f, "{}", self.bit(i) as u8)?;
        }
        Ok(())
    }
}

impl Default for Bv {
    fn default() -> Self {
        Bv::zero(1)
    }
}

impl From<bool> for Bv {
    fn from(b: bool) -> Self {
        Bv::bit_value(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_ones() {
        assert!(Bv::zero(65).is_zero());
        let o = Bv::ones(65);
        assert_eq!(o.count_ones(), 65);
        assert!(o.bit(64));
        assert!(!o.bit(65));
    }

    #[test]
    fn from_u64_masks() {
        let v = Bv::from_u64(0xff, 4);
        assert_eq!(v.to_u64(), 0xf);
        assert_eq!(v.width(), 4);
    }

    #[test]
    fn add_grows_width() {
        let a = Bv::from_u64(u64::MAX, 64);
        let b = Bv::from_u64(1, 64);
        let s = a.add(&b);
        assert_eq!(s.width(), 65);
        assert!(s.bit(64));
        assert_eq!(s.to_u64(), 0);
    }

    #[test]
    fn sub_two_complement() {
        let a = Bv::from_u64(3, 8);
        let b = Bv::from_u64(5, 8);
        let d = a.sub(&b);
        assert_eq!(d.width(), 9);
        assert_eq!(d.to_i64(), -2);
    }

    #[test]
    fn mul_wide() {
        let a = Bv::from_u64(u64::MAX, 64);
        let m = a.mul(&a);
        assert_eq!(m.width(), 128);
        let expect = (u64::MAX as u128) * (u64::MAX as u128);
        assert_eq!(m.to_u128(), expect);
    }

    #[test]
    fn mul_signed_signs() {
        let a = Bv::from_i64(-3, 8);
        let b = Bv::from_i64(5, 8);
        assert_eq!(a.mul_signed(&b).to_i64(), -15);
        assert_eq!(a.mul_signed(&a).to_i64(), 9);
    }

    #[test]
    fn div_rem_basic() {
        let a = Bv::from_u64(17, 8);
        let b = Bv::from_u64(5, 8);
        assert_eq!(a.div(&b).to_u64(), 3);
        assert_eq!(a.rem(&b).to_u64(), 2);
    }

    #[test]
    fn div_by_zero_is_zero() {
        let a = Bv::from_u64(17, 8);
        assert_eq!(a.div(&Bv::zero(8)).to_u64(), 0);
        assert_eq!(a.rem(&Bv::zero(8)).to_u64(), 0);
    }

    #[test]
    fn wide_divrem_matches_u128() {
        // exercise the >128-bit long-division path against a 128-bit oracle
        let a = Bv::from_u128(0x1234_5678_9abc_def0_1111_2222, 140);
        let b = Bv::from_u128(0xabcdef, 140);
        let (q, r) = a.divrem(&b);
        assert_eq!(q.to_u128(), 0x1234_5678_9abc_def0_1111_2222u128 / 0xabcdef);
        assert_eq!(r.to_u128(), 0x1234_5678_9abc_def0_1111_2222u128 % 0xabcdef);
    }

    #[test]
    fn comparisons() {
        let a = Bv::from_u64(3, 4);
        let b = Bv::from_u64(12, 4);
        assert!(a.ult(&b));
        assert!(!b.ult(&a));
        // 12 as signed 4-bit is -4
        assert!(b.slt(&a));
    }

    #[test]
    fn cat_and_bits_roundtrip() {
        let hi = Bv::from_u64(0b101, 3);
        let lo = Bv::from_u64(0b0011, 4);
        let c = hi.cat(&lo);
        assert_eq!(c.width(), 7);
        assert_eq!(c.to_u64(), 0b1010011);
        assert_eq!(c.bits(6, 4), hi);
        assert_eq!(c.bits(3, 0), lo);
    }

    #[test]
    fn shifts() {
        let v = Bv::from_u64(0b1011, 4);
        assert_eq!(v.shl(2).to_u64(), 0b101100);
        assert_eq!(v.shl(2).width(), 6);
        assert_eq!(v.shr(1).to_u64(), 0b101);
        assert_eq!(v.shr(1).width(), 3);
        assert_eq!(v.shr(10).width(), 1);
        assert_eq!(v.shr(10).to_u64(), 0);
    }

    #[test]
    fn arithmetic_shift() {
        let v = Bv::from_i64(-4, 4); // 0b1100
        assert_eq!(v.shr_signed(1).to_i64(), -2);
        assert_eq!(v.dshr_signed(&Bv::from_u64(1, 2)).to_u64(), 0b1110);
    }

    #[test]
    fn dynamic_shifts() {
        let v = Bv::from_u64(0b1011, 4);
        assert_eq!(v.dshl(&Bv::from_u64(2, 2), 7).to_u64(), 0b101100);
        assert_eq!(v.dshr(&Bv::from_u64(2, 2)).to_u64(), 0b10);
        // shift amount larger than the width drains to zero
        assert_eq!(
            v.dshr(&Bv::from_u64(3, 8).mul(&Bv::from_u64(100, 8)))
                .to_u64(),
            0
        );
    }

    #[test]
    fn sign_extension() {
        let v = Bv::from_u64(0b110, 3);
        assert_eq!(v.resize_sext(6).to_u64(), 0b111110);
        assert_eq!(v.resize_zext(6).to_u64(), 0b000110);
        assert_eq!(v.to_i64(), -2);
    }

    #[test]
    fn reductions() {
        assert!(Bv::ones(70).reduce_and());
        assert!(!Bv::zero(70).reduce_or());
        assert!(Bv::from_u64(0b100, 3).reduce_xor());
        assert!(!Bv::from_u64(0b110, 3).reduce_xor());
    }

    #[test]
    fn decimal_parse() {
        let v = Bv::from_decimal("340282366920938463463374607431768211455", 128).unwrap();
        assert_eq!(v, Bv::ones(128));
        assert!(Bv::from_decimal("12x", 8).is_none());
        assert_eq!(Bv::from_decimal("-1", 4).unwrap().to_u64(), 0xf);
    }

    #[test]
    fn radix_parse() {
        assert_eq!(Bv::from_radix_str("hff", 8).unwrap().to_u64(), 0xff);
        assert_eq!(Bv::from_radix_str("b101", 3).unwrap().to_u64(), 5);
        assert_eq!(Bv::from_radix_str("o17", 4).unwrap().to_u64(), 0o17);
        assert_eq!(Bv::from_radix_str("42", 8).unwrap().to_u64(), 42);
    }

    #[test]
    fn display_formats() {
        let v = Bv::from_u64(0b1010, 4);
        assert_eq!(format!("{v}"), "10");
        assert_eq!(format!("{v:b}"), "1010");
        assert_eq!(format!("{v:x}"), "a");
    }

    #[test]
    fn width_zero_is_tolerated() {
        let v = Bv::zero(0);
        assert!(v.is_zero());
        assert_eq!(v.resize_zext(4).to_u64(), 0);
    }
}

//! The manifest: the database's single atomic commit point.
//!
//! `MANIFEST.json` names every committed segment (with its file and
//! checksum), the committed prefix of the name table, and the next
//! logical time. Ingest appends names and writes the segment file
//! *first*, then replaces the manifest via write-temp-and-rename — so a
//! crash at any earlier point leaves the new data invisible: the orphan
//! segment file is never referenced and the torn name append sits past
//! the committed length. The JSON form (the workspace's mini-JSON, u64
//! exact) keeps the commit record human-auditable, mirroring the
//! campaign's JSON shard envelopes.

use crate::DbError;
use rtlcov_core::json::{self, Json};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// Manifest format version.
pub const MANIFEST_VERSION: u64 = 1;

/// The identity of a run, minus the logical time the database assigns.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RunKey {
    /// Design under test.
    pub design: String,
    /// Stimulus workload (e.g. the campaign's shard, `"s3"`).
    pub workload: String,
    /// Backend that produced the counts.
    pub backend: String,
    /// Free-form run label (commit hash, campaign name, ...).
    pub label: String,
}

impl RunKey {
    /// Compact `design/workload/backend/label` rendering for logs.
    pub fn display(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.design, self.workload, self.backend, self.label
        )
    }
}

/// One committed segment, as recorded by the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunInfo {
    /// Segment id == logical commit time (monotonic, never reused).
    pub id: u64,
    /// The run's identity.
    pub key: RunKey,
    /// Segment file name within the database directory.
    pub file: String,
    /// Trailing FNV-1a checksum of the segment file.
    pub checksum: u64,
    /// Intern-independent content identity (key + name/count pairs), for
    /// idempotent ingest.
    pub content: u64,
    /// Number of cover points in the segment.
    pub points: u64,
}

/// The committed state of the database.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Next logical time / segment id to assign.
    pub next_time: u64,
    /// Committed byte length of `names.tbl`.
    pub names_len: u64,
    /// Running FNV-1a digest of that committed prefix.
    pub names_hash: u64,
    /// Committed segments in logical-time order.
    pub segments: Vec<RunInfo>,
}

fn obj(entries: Vec<(&str, Json)>) -> Json {
    Json::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

fn get_u64(value: &Json, key: &str) -> Result<u64, DbError> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| DbError::Corrupt(format!("manifest missing u64 `{key}`")))
}

fn get_str(value: &Json, key: &str) -> Result<String, DbError> {
    value
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| DbError::Corrupt(format!("manifest missing string `{key}`")))
}

impl Manifest {
    /// Serialize to the JSON commit record.
    pub fn to_json(&self) -> String {
        let segments: Vec<Json> = self
            .segments
            .iter()
            .map(|s| {
                obj(vec![
                    ("id", Json::UInt(s.id)),
                    ("design", Json::Str(s.key.design.clone())),
                    ("workload", Json::Str(s.key.workload.clone())),
                    ("backend", Json::Str(s.key.backend.clone())),
                    ("label", Json::Str(s.key.label.clone())),
                    ("file", Json::Str(s.file.clone())),
                    ("checksum", Json::UInt(s.checksum)),
                    ("content", Json::UInt(s.content)),
                    ("points", Json::UInt(s.points)),
                ])
            })
            .collect();
        obj(vec![
            ("version", Json::UInt(MANIFEST_VERSION)),
            ("next_time", Json::UInt(self.next_time)),
            ("names_len", Json::UInt(self.names_len)),
            ("names_hash", Json::UInt(self.names_hash)),
            ("segments", Json::Array(segments)),
        ])
        .to_string()
    }

    /// Parse a manifest written by [`Manifest::to_json`].
    ///
    /// # Errors
    ///
    /// [`DbError::Corrupt`] on malformed JSON or a future version.
    pub fn from_json(text: &str) -> Result<Self, DbError> {
        let value =
            json::parse(text).map_err(|e| DbError::Corrupt(format!("manifest json: {e}")))?;
        let version = get_u64(&value, "version")?;
        if version != MANIFEST_VERSION {
            return Err(DbError::Corrupt(format!(
                "unsupported manifest version {version} (this build reads {MANIFEST_VERSION})"
            )));
        }
        let mut manifest = Manifest {
            next_time: get_u64(&value, "next_time")?,
            names_len: get_u64(&value, "names_len")?,
            names_hash: get_u64(&value, "names_hash")?,
            segments: Vec::new(),
        };
        let segments = value
            .get("segments")
            .and_then(Json::as_array)
            .ok_or_else(|| DbError::Corrupt("manifest missing `segments` array".into()))?;
        for seg in segments {
            manifest.segments.push(RunInfo {
                id: get_u64(seg, "id")?,
                key: RunKey {
                    design: get_str(seg, "design")?,
                    workload: get_str(seg, "workload")?,
                    backend: get_str(seg, "backend")?,
                    label: get_str(seg, "label")?,
                },
                file: get_str(seg, "file")?,
                checksum: get_u64(seg, "checksum")?,
                content: get_u64(seg, "content")?,
                points: get_u64(seg, "points")?,
            });
        }
        Ok(manifest)
    }

    /// Load the manifest from `dir`, or an empty one when the database
    /// has never committed (no `MANIFEST.json`).
    ///
    /// # Errors
    ///
    /// [`DbError`] on unreadable or corrupt manifests.
    pub fn load(dir: &Path) -> Result<Self, DbError> {
        let path = dir.join("MANIFEST.json");
        match fs::read_to_string(&path) {
            Ok(text) => Self::from_json(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Manifest::default()),
            Err(e) => Err(DbError::Io(format!("read manifest: {e}"))),
        }
    }

    /// Atomically replace the on-disk manifest (write temp, rename).
    /// This call *is* the commit.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn commit(&self, dir: &Path) -> Result<(), DbError> {
        let path = dir.join("MANIFEST.json");
        let tmp = dir.join("MANIFEST.json.tmp");
        fs::write(&tmp, self.to_json())
            .map_err(|e| DbError::Io(format!("write manifest temp: {e}")))?;
        fs::rename(&tmp, &path).map_err(|e| DbError::Io(format!("commit manifest: {e}")))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            next_time: 3,
            names_len: 120,
            names_hash: 0xdead_beef,
            segments: vec![
                RunInfo {
                    id: 0,
                    key: RunKey {
                        design: "gcd".into(),
                        workload: "s0".into(),
                        backend: "interp".into(),
                        label: "a".into(),
                    },
                    file: "seg-0.rseg".into(),
                    checksum: 1,
                    content: 2,
                    points: 10,
                },
                RunInfo {
                    id: 2,
                    key: RunKey {
                        design: "queue".into(),
                        workload: "s1".into(),
                        backend: "fpga".into(),
                        label: "b".into(),
                    },
                    file: "seg-2.rseg".into(),
                    checksum: u64::MAX,
                    content: 4,
                    points: 0,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip() {
        let m = sample();
        assert_eq!(Manifest::from_json(&m.to_json()).unwrap(), m);
        let empty = Manifest::default();
        assert_eq!(Manifest::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn missing_manifest_loads_empty() {
        let dir = std::env::temp_dir().join(format!("rtlcov-manifest-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Manifest::default());
        // commit then reload
        let m = sample();
        m.commit(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), m);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn future_version_is_rejected() {
        let text = sample().to_json().replace("\"version\":1", "\"version\":9");
        assert!(matches!(
            Manifest::from_json(&text),
            Err(DbError::Corrupt(_))
        ));
    }
}

//! The query layer: run selection, merged maps, point lookups, holes,
//! diffs, and per-instance rollups.
//!
//! Every query starts from a [`Selector`] — a conjunction of optional
//! filters over the run key plus a logical-time lower bound — resolves it
//! to an ordered segment-id set, and merges through the memoized tree
//! ([`crate::memo`]), so repeated and incrementally-grown queries are
//! mostly cache hits. Merged results are bit-identical to folding the raw
//! run maps with [`CoverageMap::merge`], the §5.3 merge the whole system
//! is built on.

use crate::manifest::RunInfo;
use crate::store::{CoverageDb, DbError};
use rtlcov_core::CoverageMap;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A conjunction of run filters. `None` fields match everything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Selector {
    /// Match this design.
    pub design: Option<String>,
    /// Match this workload.
    pub workload: Option<String>,
    /// Match this backend.
    pub backend: Option<String>,
    /// Match this label.
    pub label: Option<String>,
    /// Only runs with logical time ≥ this.
    pub since: Option<u64>,
}

impl Selector {
    /// The match-everything selector.
    pub fn all() -> Self {
        Selector::default()
    }

    /// Whether a committed run matches.
    pub fn matches(&self, run: &RunInfo) -> bool {
        let field = |want: &Option<String>, have: &str| want.as_deref().is_none_or(|w| w == have);
        field(&self.design, &run.key.design)
            && field(&self.workload, &run.key.workload)
            && field(&self.backend, &run.key.backend)
            && field(&self.label, &run.key.label)
            && self.since.is_none_or(|t| run.id >= t)
    }

    /// Parse a comma-separated `key=value` list (`design=gcd,label=x`).
    /// Empty input selects everything.
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown keys or malformed pairs.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut sel = Selector::default();
        for pair in spec.split(',').filter(|p| !p.is_empty()) {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("selector `{pair}` is not key=value"))?;
            match k {
                "design" => sel.design = Some(v.to_string()),
                "workload" => sel.workload = Some(v.to_string()),
                "backend" => sel.backend = Some(v.to_string()),
                "label" => sel.label = Some(v.to_string()),
                "since" => sel.since = Some(v.parse().map_err(|_| format!("bad since `{v}`"))?),
                other => return Err(format!("unknown selector key `{other}`")),
            }
        }
        Ok(sel)
    }
}

/// One name whose counts differ between two run sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffEntry {
    /// Cover-point name.
    pub name: String,
    /// Merged count in set A (`None` when the point is unknown there).
    pub a: Option<u64>,
    /// Merged count in set B.
    pub b: Option<u64>,
}

/// Aggregated coverage for one instance path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RollupRow {
    /// Cover points under the instance.
    pub points: u64,
    /// Points hit at least once.
    pub covered: u64,
    /// Saturating sum of all hits.
    pub hits: u64,
}

/// The instance path of a hierarchical cover name: everything before the
/// final `.` segment, following `rtlcov_core::instances`' convention
/// that a cover declared as `name` in an instance at `path` runs as
/// `path.name`. Top-level covers roll up under `"<top>"`.
pub fn instance_of(name: &str) -> &str {
    match name.rsplit_once('.') {
        Some((path, _)) => path,
        None => "<top>",
    }
}

impl CoverageDb {
    /// Segment ids matching `selector`, in logical-time order — the
    /// stable order the memoized merge tree wants.
    pub fn select(&self, selector: &Selector) -> Vec<u64> {
        self.runs()
            .iter()
            .filter(|r| selector.matches(r))
            .map(|r| r.id)
            .collect()
    }

    /// The merged map of every selected run (memoized).
    ///
    /// # Errors
    ///
    /// [`DbError`] when a segment fails to load; the first failure wins.
    pub fn merged(&self, selector: &Selector) -> Result<Arc<CoverageMap>, DbError> {
        self.merged_ids(&self.select(selector))
    }

    /// The merged map of an explicit id set (logical-time order).
    ///
    /// # Errors
    ///
    /// [`DbError`] when a segment fails to load.
    pub fn merged_ids(&self, ids: &[u64]) -> Result<Arc<CoverageMap>, DbError> {
        // preload so the infallible memo leaf can't hide a load error
        for &id in ids {
            self.segment_map(id)?;
        }
        let leaf = |id: u64| {
            self.segment_map(id)
                .expect("preloaded above; segments are immutable")
        };
        Ok(self.memo.merged(ids, &leaf))
    }

    /// The merged count of one cover point across the selected runs.
    ///
    /// # Errors
    ///
    /// [`DbError`] when a segment fails to load.
    pub fn point(&self, selector: &Selector, name: &str) -> Result<Option<u64>, DbError> {
        Ok(self.merged(selector)?.count(name))
    }

    /// Cover points no selected run has ever hit — the paper's candidates
    /// for directed tests or formal reachability checks.
    ///
    /// # Errors
    ///
    /// [`DbError`] when a segment fails to load.
    pub fn holes(&self, selector: &Selector) -> Result<Vec<String>, DbError> {
        Ok(self
            .merged(selector)?
            .iter()
            .filter(|(_, count)| *count == 0)
            .map(|(name, _)| name.to_string())
            .collect())
    }

    /// Names whose merged counts differ between run sets `a` and `b`
    /// (including points known to only one side), in name order.
    ///
    /// # Errors
    ///
    /// [`DbError`] when a segment fails to load.
    pub fn diff(&self, a: &Selector, b: &Selector) -> Result<Vec<DiffEntry>, DbError> {
        let ma = self.merged(a)?;
        let mb = self.merged(b)?;
        let mut out = Vec::new();
        for (name, ca) in ma.iter() {
            let cb = mb.count(name);
            if cb != Some(ca) {
                out.push(DiffEntry {
                    name: name.to_string(),
                    a: Some(ca),
                    b: cb,
                });
            }
        }
        for (name, cb) in mb.iter() {
            if ma.count(name).is_none() {
                out.push(DiffEntry {
                    name: name.to_string(),
                    a: None,
                    b: Some(cb),
                });
            }
        }
        out.sort_by(|x, y| x.name.cmp(&y.name));
        Ok(out)
    }

    /// Per-instance rollup of the merged selection: group every cover
    /// point by its instance path ([`instance_of`]) and aggregate.
    ///
    /// # Errors
    ///
    /// [`DbError`] when a segment fails to load.
    pub fn rollup(&self, selector: &Selector) -> Result<BTreeMap<String, RollupRow>, DbError> {
        let merged = self.merged(selector)?;
        let mut rows: BTreeMap<String, RollupRow> = BTreeMap::new();
        for (name, count) in merged.iter() {
            let row = rows.entry(instance_of(name).to_string()).or_default();
            row.points += 1;
            if count > 0 {
                row.covered += 1;
            }
            row.hits = row.hits.saturating_add(count);
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::RunKey;
    use std::fs;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rtlcov-query-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn map(entries: &[(&str, u64)]) -> CoverageMap {
        let mut m = CoverageMap::new();
        for (k, v) in entries {
            m.record(*k, *v);
        }
        m
    }

    fn key(design: &str, workload: &str, backend: &str) -> RunKey {
        RunKey {
            design: design.into(),
            workload: workload.into(),
            backend: backend.into(),
            label: "t".into(),
        }
    }

    fn seeded(tag: &str) -> (CoverageDb, PathBuf) {
        let dir = tmp(tag);
        let mut db = CoverageDb::open(&dir).unwrap();
        db.ingest(
            &key("gcd", "s0", "interp"),
            &map(&[("m.a", 2), ("m.b", 0), ("n.c", 1)]),
        )
        .unwrap();
        db.ingest(
            &key("gcd", "s1", "interp"),
            &map(&[("m.a", 3), ("m.b", 0), ("n.c", 0)]),
        )
        .unwrap();
        db.ingest(&key("queue", "s0", "fpga"), &map(&[("q.x", 5), ("top", 0)]))
            .unwrap();
        (db, dir)
    }

    #[test]
    fn selector_parsing_and_matching() {
        let sel = Selector::parse("design=gcd,backend=interp,since=1").unwrap();
        assert_eq!(sel.design.as_deref(), Some("gcd"));
        assert_eq!(sel.since, Some(1));
        assert!(Selector::parse("").unwrap() == Selector::all());
        assert!(Selector::parse("nope=1").is_err());
        assert!(Selector::parse("design").is_err());
        assert!(Selector::parse("since=x").is_err());
    }

    #[test]
    fn merged_matches_direct_fold_and_select_filters() {
        let (db, dir) = seeded("merged");
        let all = db.merged(&Selector::all()).unwrap();
        let mut expect = map(&[("m.a", 5), ("m.b", 0), ("n.c", 1)]);
        expect.merge(&map(&[("q.x", 5), ("top", 0)]));
        assert_eq!(*all, expect);
        let gcd = db.merged(&Selector::parse("design=gcd").unwrap()).unwrap();
        assert_eq!(*gcd, map(&[("m.a", 5), ("m.b", 0), ("n.c", 1)]));
        let since = db.select(&Selector::parse("since=2").unwrap());
        assert_eq!(since, vec![2]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn holes_and_point() {
        let (db, dir) = seeded("holes");
        let gcd = Selector::parse("design=gcd").unwrap();
        assert_eq!(db.holes(&gcd).unwrap(), vec!["m.b".to_string()]);
        assert_eq!(db.point(&gcd, "m.a").unwrap(), Some(5));
        assert_eq!(db.point(&gcd, "q.x").unwrap(), None);
        // n.c is a hole in shard s1 alone but not overall
        let s1 = Selector::parse("design=gcd,workload=s1").unwrap();
        assert!(db.holes(&s1).unwrap().contains(&"n.c".to_string()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn diff_reports_changed_and_one_sided_points() {
        let (db, dir) = seeded("diff");
        let s0 = Selector::parse("design=gcd,workload=s0").unwrap();
        let s1 = Selector::parse("design=gcd,workload=s1").unwrap();
        let diff = db.diff(&s0, &s1).unwrap();
        assert_eq!(
            diff,
            vec![
                DiffEntry {
                    name: "m.a".into(),
                    a: Some(2),
                    b: Some(3)
                },
                DiffEntry {
                    name: "n.c".into(),
                    a: Some(1),
                    b: Some(0)
                },
            ]
        );
        // against queue: everything is one-sided
        let q = Selector::parse("design=queue").unwrap();
        let dq = db.diff(&s0, &q).unwrap();
        assert!(dq.iter().any(|d| d.name == "q.x" && d.a.is_none()));
        assert!(dq.iter().any(|d| d.name == "m.a" && d.b.is_none()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rollup_groups_by_instance_path() {
        let (db, dir) = seeded("rollup");
        let rows = db.rollup(&Selector::all()).unwrap();
        assert_eq!(
            rows["m"],
            RollupRow {
                points: 2,
                covered: 1,
                hits: 5
            }
        );
        assert_eq!(
            rows["n"],
            RollupRow {
                points: 1,
                covered: 1,
                hits: 1
            }
        );
        assert_eq!(
            rows["q"],
            RollupRow {
                points: 1,
                covered: 1,
                hits: 5
            }
        );
        assert_eq!(
            rows["<top>"],
            RollupRow {
                points: 1,
                covered: 0,
                hits: 0
            }
        );
        assert_eq!(instance_of("a.b.c"), "a.b");
        assert_eq!(instance_of("solo"), "<top>");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repeated_queries_hit_the_memo() {
        let (db, dir) = seeded("memo");
        let sel = Selector::all();
        db.merged(&sel).unwrap();
        let (hits_before, misses_before) = db.memo_stats();
        db.merged(&sel).unwrap();
        let (hits_after, misses_after) = db.memo_stats();
        assert_eq!(misses_after, misses_before, "no new merges");
        assert!(hits_after > hits_before);
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! The global cover-point name table.
//!
//! Every run of a design reports the same hierarchical names, so storing
//! them per segment would duplicate the (by far) largest byte component
//! of a coverage map once per run. Instead the database keeps one
//! append-only table, `names.tbl`, and segments store `u32` ids.
//!
//! On-disk layout (integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "RNAM"
//! 2       2     format version (currently 1)
//! 6       2     reserved flags (must be 0)
//! 8       —     entries: name_len u32, name bytes (UTF-8)
//! ```
//!
//! The table itself carries no trailer: crash safety comes from the
//! manifest, which records the *committed* byte length and a running
//! FNV-1a digest of exactly those bytes. Opening the database truncates
//! any torn append past the committed length and verifies the digest, so
//! a crash between "append names" and "commit manifest" is invisible.

use crate::{fnv1a_continue, DbError};
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::Path;

/// The magic bytes opening `names.tbl`.
pub const NAMES_MAGIC: [u8; 4] = *b"RNAM";
/// Name-table format version.
pub const NAMES_VERSION: u16 = 1;
/// Seed digest of an empty table (header only).
fn header_bytes() -> [u8; 8] {
    let mut h = [0u8; 8];
    h[..4].copy_from_slice(&NAMES_MAGIC);
    h[4..6].copy_from_slice(&NAMES_VERSION.to_le_bytes());
    h
}

/// In-memory name table: id ↔ name both ways.
#[derive(Debug, Default)]
pub struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
    /// Byte length of the table file covering `names`.
    committed_len: u64,
    /// Running FNV-1a digest of those bytes.
    committed_hash: u64,
}

impl Interner {
    /// An empty table (nothing on disk yet). The 8-byte header is written
    /// as part of the first append, so a fresh table commits length 0.
    pub fn new() -> Self {
        Interner {
            names: Vec::new(),
            index: HashMap::new(),
            committed_len: 0,
            committed_hash: crate::fnv1a(b""),
        }
    }

    /// Load the table from `path`, trusting only the first
    /// `committed_len` bytes (the manifest's committed prefix) and
    /// verifying their running digest. Bytes past the prefix — a torn
    /// append from a crashed ingest — are ignored.
    ///
    /// # Errors
    ///
    /// [`DbError::Corrupt`] when the file is shorter than the committed
    /// prefix, the digest mismatches, or an entry is malformed.
    pub fn load(path: &Path, committed_len: u64, committed_hash: u64) -> Result<Self, DbError> {
        let bytes = fs::read(path).map_err(|e| DbError::Io(format!("read names table: {e}")))?;
        let committed = usize::try_from(committed_len)
            .ok()
            .filter(|&len| len <= bytes.len())
            .ok_or_else(|| {
                DbError::Corrupt(format!(
                    "name table is {} bytes but the manifest committed {committed_len}",
                    bytes.len()
                ))
            })?;
        let bytes = &bytes[..committed];
        let digest = crate::fnv1a(bytes);
        if digest != committed_hash {
            return Err(DbError::Corrupt(
                "name table digest does not match the manifest".into(),
            ));
        }
        if bytes.len() < 8 || bytes[..4] != NAMES_MAGIC {
            return Err(DbError::Corrupt("name table header malformed".into()));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != NAMES_VERSION {
            return Err(DbError::Corrupt(format!(
                "unsupported name table version {version}"
            )));
        }
        let mut interner = Interner::new();
        let mut pos = 8usize;
        while pos < bytes.len() {
            if pos + 4 > bytes.len() {
                return Err(DbError::Corrupt("name table truncated mid-length".into()));
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("len 4")) as usize;
            pos += 4;
            if pos + len > bytes.len() {
                return Err(DbError::Corrupt("name table truncated mid-name".into()));
            }
            let name = std::str::from_utf8(&bytes[pos..pos + len])
                .map_err(|_| DbError::Corrupt("name table entry is not UTF-8".into()))?;
            pos += len;
            interner.intern(name);
        }
        interner.committed_len = committed as u64;
        interner.committed_hash = committed_hash;
        Ok(interner)
    }

    /// The id for `name`, assigning the next free id on first sight.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("name table fits u32 ids");
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// The id for `name`, if already interned (no mutation).
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// The name behind `id`.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Committed byte length of the on-disk table.
    pub fn committed_len(&self) -> u64 {
        self.committed_len
    }

    /// Running digest of the committed prefix.
    pub fn committed_hash(&self) -> u64 {
        self.committed_hash
    }

    /// Total bytes the interned names occupy once (the denominator of the
    /// dedup-savings ratio the bench reports).
    pub fn name_bytes(&self) -> u64 {
        self.names.iter().map(|n| n.len() as u64).sum()
    }

    /// Append every name with an id at or past `from_id` to the on-disk
    /// table and advance the committed prefix over them. Called by ingest
    /// *before* the manifest commit: if the commit never happens, the
    /// appended bytes sit past the old committed length and the next open
    /// ignores them.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn append_from(&mut self, path: &Path, from_id: u32) -> Result<(), DbError> {
        let mut chunk = Vec::new();
        if self.committed_len == 0 {
            chunk.extend_from_slice(&header_bytes());
        }
        for name in &self.names[from_id as usize..] {
            chunk.extend_from_slice(&(name.len() as u32).to_le_bytes());
            chunk.extend_from_slice(name.as_bytes());
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| DbError::Io(format!("open names table: {e}")))?;
        // the file may hold a torn append past committed_len from an
        // earlier crash; rewrite from the committed prefix instead of
        // blindly appending after garbage
        let disk_len = file
            .metadata()
            .map_err(|e| DbError::Io(format!("stat names table: {e}")))?
            .len();
        if disk_len > self.committed_len {
            file.set_len(self.committed_len)
                .map_err(|e| DbError::Io(format!("truncate torn names append: {e}")))?;
        }
        file.write_all(&chunk)
            .map_err(|e| DbError::Io(format!("append names table: {e}")))?;
        file.sync_all()
            .map_err(|e| DbError::Io(format!("sync names table: {e}")))?;
        self.committed_hash = fnv1a_continue(self.committed_hash, &chunk);
        self.committed_len += chunk.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rtlcov-intern-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("names.tbl")
    }

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern("top.a");
        let b = i.intern("top.b");
        assert_eq!(i.intern("top.a"), a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(i.resolve(b), Some("top.b"));
        assert_eq!(i.lookup("top.b"), Some(b));
        assert_eq!(i.lookup("nope"), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn append_and_reload_round_trips() {
        let path = tmp("roundtrip");
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        i.append_from(&path, 0).unwrap();
        let first_len = i.committed_len();
        i.intern("z");
        i.append_from(&path, 2).unwrap();
        assert!(i.committed_len() > first_len);
        let reloaded = Interner::load(&path, i.committed_len(), i.committed_hash()).unwrap();
        assert_eq!(reloaded.len(), 3);
        assert_eq!(reloaded.resolve(2), Some("z"));
        assert_eq!(reloaded.committed_hash(), i.committed_hash());
    }

    #[test]
    fn torn_append_past_the_committed_prefix_is_invisible() {
        let path = tmp("torn");
        let mut i = Interner::new();
        i.intern("solid");
        i.append_from(&path, 0).unwrap();
        // simulate a crash mid-append: garbage after the committed prefix
        let mut file = fs::OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"\xff\xff\xff\xfftorn").unwrap();
        drop(file);
        let reloaded = Interner::load(&path, i.committed_len(), i.committed_hash()).unwrap();
        assert_eq!(reloaded.len(), 1);
        // and a subsequent append heals the file by truncating first
        let mut healed = reloaded;
        healed.intern("next");
        healed.append_from(&path, 1).unwrap();
        let again = Interner::load(&path, healed.committed_len(), healed.committed_hash()).unwrap();
        assert_eq!(again.resolve(1), Some("next"));
    }

    #[test]
    fn corrupted_committed_bytes_are_detected() {
        let path = tmp("corrupt");
        let mut i = Interner::new();
        i.intern("victim");
        i.append_from(&path, 0).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = Interner::load(&path, i.committed_len(), i.committed_hash());
        assert!(matches!(err, Err(DbError::Corrupt(_))), "{err:?}");
    }

    #[test]
    fn manifest_len_beyond_file_is_corrupt() {
        let path = tmp("short");
        fs::write(&path, b"RNAM").unwrap();
        let err = Interner::load(&path, 400, 0);
        assert!(matches!(err, Err(DbError::Corrupt(_))));
    }
}

//! A small hand-rolled HTTP/1.1 serving layer over [`CoverageDb`].
//!
//! Plain `std::net::TcpListener`, GET-only, JSON responses via the
//! workspace's mini-JSON — no frameworks, matching the repo's no-new-deps
//! rule. One request per connection (`Connection: close`), served
//! sequentially; the server refreshes the database before each request,
//! so a campaign committing into the same directory is visible live.
//!
//! Endpoints (query parameters are the [`Selector`] fields —
//! `design`, `workload`, `backend`, `label`, `since`):
//!
//! | path         | extra params        | returns                         |
//! |--------------|---------------------|---------------------------------|
//! | `/health`    | —                   | `{"status":"ok","runs":N}`      |
//! | `/v1/runs`   | selector            | committed runs                  |
//! | `/v1/query`  | selector            | merged counts + summary         |
//! | `/v1/holes`  | selector            | never-hit cover points          |
//! | `/v1/point`  | selector + `name=`  | one merged count (null unknown) |
//! | `/v1/diff`   | `a.`/`b.`-prefixed  | differing points between sets   |
//! | `/v1/rollup` | selector            | per-instance aggregation        |

use crate::query::Selector;
use crate::store::{CoverageDb, DbError};
use rtlcov_core::json::Json;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

/// Largest request head (request line + headers) we accept.
const MAX_HEAD: usize = 16 * 1024;

/// Decode `%XX` escapes and `+`-as-space in a query component.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| (b as char).to_digit(16);
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                        continue;
                    }
                    _ => out.push(b'%'),
                }
            }
            b'+' => out.push(b' '),
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parse `k=v&k=v` into decoded pairs (valueless keys decode to `""`).
fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k), percent_decode(v))
        })
        .collect()
}

/// Build a [`Selector`] from `prefix`-stripped params; with a prefix,
/// unprefixed params belong to someone else and are skipped, without one
/// every param must be a selector field.
fn selector_from(params: &[(String, String)], prefix: &str) -> Result<Selector, String> {
    let mut sel = Selector::default();
    for (key, value) in params {
        let field = match key.strip_prefix(prefix) {
            Some(f) => f,
            None if prefix.is_empty() => key.as_str(),
            None => continue,
        };
        match field {
            "design" => sel.design = Some(value.clone()),
            "workload" => sel.workload = Some(value.clone()),
            "backend" => sel.backend = Some(value.clone()),
            "label" => sel.label = Some(value.clone()),
            "since" => sel.since = Some(value.parse().map_err(|_| format!("bad since `{value}`"))?),
            other => return Err(format!("unknown query parameter `{prefix}{other}`")),
        }
    }
    Ok(sel)
}

fn obj(entries: Vec<(&str, Json)>) -> Json {
    Json::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

fn error_body(message: &str) -> String {
    obj(vec![("error", Json::Str(message.to_string()))]).to_string()
}

fn db_error(e: &DbError) -> (u16, String) {
    let status = match e {
        DbError::NotFound(_) => 404,
        _ => 500,
    };
    (status, error_body(&e.to_string()))
}

/// Dispatch one parsed request to the query layer. Returns
/// `(status, JSON body)`; pure apart from the database reads, so the
/// routing logic is unit-testable without sockets.
pub fn respond(db: &CoverageDb, method: &str, path: &str, query: &str) -> (u16, String) {
    if method != "GET" {
        return (405, error_body("only GET is supported"));
    }
    let params = parse_query(query);
    let selector = |prefix: &str| selector_from(&params, prefix);
    match path {
        "/health" => (
            200,
            obj(vec![
                ("status", Json::Str("ok".into())),
                ("runs", Json::UInt(db.runs().len() as u64)),
            ])
            .to_string(),
        ),
        "/v1/runs" => {
            let sel = match selector("") {
                Ok(s) => s,
                Err(e) => return (400, error_body(&e)),
            };
            let runs: Vec<Json> = db
                .runs()
                .iter()
                .filter(|r| sel.matches(r))
                .map(|r| {
                    obj(vec![
                        ("id", Json::UInt(r.id)),
                        ("design", Json::Str(r.key.design.clone())),
                        ("workload", Json::Str(r.key.workload.clone())),
                        ("backend", Json::Str(r.key.backend.clone())),
                        ("label", Json::Str(r.key.label.clone())),
                        ("points", Json::UInt(r.points)),
                    ])
                })
                .collect();
            (200, obj(vec![("runs", Json::Array(runs))]).to_string())
        }
        "/v1/query" => {
            let sel = match selector("") {
                Ok(s) => s,
                Err(e) => return (400, error_body(&e)),
            };
            let ids = db.select(&sel);
            match db.merged_ids(&ids) {
                Ok(map) => {
                    let counts = Json::Object(
                        map.iter()
                            .map(|(n, c)| (n.to_string(), Json::UInt(c)))
                            .collect::<BTreeMap<_, _>>(),
                    );
                    (
                        200,
                        obj(vec![
                            (
                                "selected",
                                Json::Array(ids.iter().map(|&i| Json::UInt(i)).collect()),
                            ),
                            ("points", Json::UInt(map.len() as u64)),
                            ("covered", Json::UInt(map.covered() as u64)),
                            ("counts", counts),
                        ])
                        .to_string(),
                    )
                }
                Err(e) => db_error(&e),
            }
        }
        "/v1/holes" => {
            let sel = match selector("") {
                Ok(s) => s,
                Err(e) => return (400, error_body(&e)),
            };
            match db.holes(&sel) {
                Ok(holes) => (
                    200,
                    obj(vec![(
                        "holes",
                        Json::Array(holes.into_iter().map(Json::Str).collect()),
                    )])
                    .to_string(),
                ),
                Err(e) => db_error(&e),
            }
        }
        "/v1/point" => {
            let name = match params.iter().find(|(k, _)| k == "name") {
                Some((_, v)) => v.clone(),
                None => return (400, error_body("missing `name` parameter")),
            };
            let rest: Vec<(String, String)> = params
                .iter()
                .filter(|(k, _)| k != "name")
                .cloned()
                .collect();
            let sel = match selector_from(&rest, "") {
                Ok(s) => s,
                Err(e) => return (400, error_body(&e)),
            };
            match db.point(&sel, &name) {
                Ok(count) => (
                    200,
                    obj(vec![
                        ("name", Json::Str(name)),
                        ("count", count.map_or(Json::Null, Json::UInt)),
                    ])
                    .to_string(),
                ),
                Err(e) => db_error(&e),
            }
        }
        "/v1/diff" => {
            let (a, b) = match (selector("a."), selector("b.")) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => return (400, error_body(&e)),
            };
            match db.diff(&a, &b) {
                Ok(diff) => {
                    let rows: Vec<Json> = diff
                        .into_iter()
                        .map(|d| {
                            obj(vec![
                                ("name", Json::Str(d.name)),
                                ("a", d.a.map_or(Json::Null, Json::UInt)),
                                ("b", d.b.map_or(Json::Null, Json::UInt)),
                            ])
                        })
                        .collect();
                    (200, obj(vec![("diff", Json::Array(rows))]).to_string())
                }
                Err(e) => db_error(&e),
            }
        }
        "/v1/rollup" => {
            let sel = match selector("") {
                Ok(s) => s,
                Err(e) => return (400, error_body(&e)),
            };
            match db.rollup(&sel) {
                Ok(rows) => {
                    let rollup = Json::Object(
                        rows.into_iter()
                            .map(|(instance, row)| {
                                (
                                    instance,
                                    obj(vec![
                                        ("points", Json::UInt(row.points)),
                                        ("covered", Json::UInt(row.covered)),
                                        ("hits", Json::UInt(row.hits)),
                                    ]),
                                )
                            })
                            .collect::<BTreeMap<_, _>>(),
                    );
                    (200, obj(vec![("rollup", rollup)]).to_string())
                }
                Err(e) => db_error(&e),
            }
        }
        _ => (404, error_body(&format!("no such endpoint `{path}`"))),
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    }
}

/// Read the request head (through the blank line) and answer it.
fn handle(stream: &mut TcpStream, db: &mut CoverageDb) -> io::Result<()> {
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_HEAD {
            break;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
    }
    let text = String::from_utf8_lossy(&head);
    let mut request_line = text.lines().next().unwrap_or("").split_whitespace();
    let method = request_line.next().unwrap_or("");
    let target = request_line.next().unwrap_or("/");
    let (path, query) = target.split_once('?').unwrap_or((target, ""));

    // pick up anything a concurrent campaign committed since last request
    let (status, body) = match db.refresh() {
        Ok(_) => respond(db, method, path, query),
        Err(e) => db_error(&e),
    };
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        reason(status),
        body.len()
    )?;
    stream.flush()
}

/// A bound-but-not-yet-serving HTTP server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
}

impl Server {
    /// Bind to `addr` (e.g. `127.0.0.1:8722`, or port `0` for an
    /// OS-assigned port).
    ///
    /// # Errors
    ///
    /// Socket binding failures.
    pub fn bind(addr: &str) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Socket introspection failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve requests sequentially. `max_requests` bounds the number of
    /// connections handled (for tests and CI smoke runs); `None` serves
    /// until the process dies. Per-connection I/O errors are swallowed so
    /// one bad client cannot stop the server.
    ///
    /// # Errors
    ///
    /// Accept-loop failures only.
    pub fn serve(&self, db: &mut CoverageDb, max_requests: Option<usize>) -> io::Result<()> {
        for (served, stream) in self.listener.incoming().enumerate() {
            let mut stream = stream?;
            let _ = handle(&mut stream, db);
            if max_requests.is_some_and(|max| served + 1 >= max) {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::RunKey;
    use rtlcov_core::CoverageMap;
    use std::fs;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rtlcov-http-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seeded(tag: &str) -> (CoverageDb, PathBuf) {
        let dir = tmp(tag);
        let mut db = CoverageDb::open(&dir).unwrap();
        let mut m = CoverageMap::new();
        m.record("m.a", 2);
        m.declare("m.b");
        db.ingest(
            &RunKey {
                design: "gcd".into(),
                workload: "s0".into(),
                backend: "interp".into(),
                label: "t".into(),
            },
            &m,
        )
        .unwrap();
        (db, dir)
    }

    #[test]
    fn decoding_and_query_parsing() {
        assert_eq!(percent_decode("a%20b+c%2fd"), "a b c/d");
        assert_eq!(percent_decode("no%2"), "no%2"); // truncated escape passes through
        assert_eq!(percent_decode("%zz"), "%zz"); // bad hex passes through
        let params = parse_query("design=gcd&name=m%2Ea&flag");
        assert_eq!(params[0], ("design".into(), "gcd".into()));
        assert_eq!(params[1], ("name".into(), "m.a".into()));
        assert_eq!(params[2], ("flag".into(), "".into()));
    }

    #[test]
    fn selector_prefixes() {
        let params = parse_query("a.design=gcd&b.design=queue&a.since=1");
        let a = selector_from(&params, "a.").unwrap();
        let b = selector_from(&params, "b.").unwrap();
        assert_eq!(a.design.as_deref(), Some("gcd"));
        assert_eq!(a.since, Some(1));
        assert_eq!(b.design.as_deref(), Some("queue"));
        assert!(selector_from(&parse_query("bogus=1"), "").is_err());
        assert!(selector_from(&parse_query("since=x"), "").is_err());
    }

    #[test]
    fn endpoints_answer_json() {
        let (db, dir) = seeded("endpoints");
        let (status, body) = respond(&db, "GET", "/health", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"runs\":1"), "{body}");

        let (status, body) = respond(&db, "GET", "/v1/query", "design=gcd");
        assert_eq!(status, 200);
        assert!(body.contains("\"m.a\":2"), "{body}");
        assert!(body.contains("\"covered\":1"), "{body}");

        let (status, body) = respond(&db, "GET", "/v1/holes", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"m.b\""), "{body}");

        let (status, body) = respond(&db, "GET", "/v1/point", "name=m.a");
        assert_eq!(status, 200);
        assert!(body.contains("\"count\":2"), "{body}");
        let (_, body) = respond(&db, "GET", "/v1/point", "name=missing");
        assert!(body.contains("\"count\":null"), "{body}");

        let (status, body) = respond(&db, "GET", "/v1/rollup", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"m\":{"), "{body}");

        let (status, body) = respond(&db, "GET", "/v1/diff", "a.workload=s0&b.workload=s9");
        assert_eq!(status, 200);
        assert!(body.contains("\"b\":null"), "{body}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn errors_map_to_http_statuses() {
        let (db, dir) = seeded("errors");
        assert_eq!(respond(&db, "POST", "/health", "").0, 405);
        assert_eq!(respond(&db, "GET", "/nope", "").0, 404);
        assert_eq!(respond(&db, "GET", "/v1/query", "bogus=1").0, 400);
        assert_eq!(respond(&db, "GET", "/v1/point", "").0, 400);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serves_over_a_real_socket() {
        let (db, dir) = seeded("socket");
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let thread = std::thread::spawn(move || {
            let mut db = db;
            server.serve(&mut db, Some(2)).unwrap();
        });
        for (request, expect) in [
            (
                "GET /health HTTP/1.1\r\nHost: x\r\n\r\n",
                "\"status\":\"ok\"",
            ),
            (
                "GET /v1/query?design=gcd HTTP/1.1\r\nHost: x\r\n\r\n",
                "\"m.a\":2",
            ),
        ] {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(request.as_bytes()).unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
            assert!(response.contains(expect), "{response}");
        }
        thread.join().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }
}

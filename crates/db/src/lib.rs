//! # rtlcov-db
//!
//! A persistent, embedded coverage database over the paper's central
//! insight (§5.3): because every backend reports the same
//! `cover-name → count` map, *storing* coverage is as simple as merging
//! it — runs from any simulator, the FPGA flow, or the formal engine all
//! land in one queryable store.
//!
//! Architecture, bottom up:
//!
//! * [`intern`] — a global append-only string table. Cover-point names
//!   repeat across every run of a design; each name is stored once and
//!   segments reference it by a `u32` id.
//! * [`segment`] — immutable, checksummed binary segments: one ingested
//!   run each, keyed by `(design, workload, backend, label, logical
//!   time)`, holding `(name-id, count)` pairs in strictly ascending id
//!   order (duplicates are structurally impossible to decode).
//! * [`manifest`] — the commit point. A segment (and any names it
//!   appended) becomes visible only when `MANIFEST.json` is atomically
//!   replaced; a crash mid-ingest leaves an orphan file the next open
//!   ignores and `gc` removes.
//! * [`store`] — [`store::CoverageDb`]: open/ingest/gc plus segment-map
//!   loading with an in-memory cache.
//! * [`memo`] — the memoized merge tree: merge nodes are cached by the
//!   hash of the segment-id set they cover, with a growth-stable split
//!   rule, so re-querying after one new ingest recomputes only the
//!   `O(log n)` right spine.
//! * [`query`] — run selection ([`query::Selector`]), point lookups,
//!   never-hit `holes`, run-set `diff`s, and per-instance rollups over
//!   the hierarchical names that `rtlcov_core::instances` emits.
//! * [`http`] — a dependency-free HTTP/1.1 server on `std::net` exposing
//!   the query layer as JSON endpoints.

#![warn(missing_docs)]

pub mod http;
pub mod intern;
pub mod manifest;
pub mod memo;
pub mod query;
pub mod segment;
pub mod store;

pub use manifest::{Manifest, RunInfo, RunKey};
pub use memo::MergeMemo;
pub use query::{DiffEntry, RollupRow, Selector};
pub use store::{CoverageDb, DbError, IngestOutcome};

/// The 64-bit FNV-1a hash the database uses for checksums and cache keys
/// (no cryptographic claims — this guards against torn writes and bit
/// rot, not adversaries).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continue an FNV-1a hash from a previous digest. FNV is a running
/// fold, so `fnv1a(ab) == fnv1a_continue(fnv1a(a), b)` — the manifest
/// exploits this to checksum the append-only name table incrementally.
pub fn fnv1a_continue(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_a_running_fold() {
        let all = fnv1a(b"coverage-segment");
        let split = fnv1a_continue(fnv1a(b"coverage-"), b"segment");
        assert_eq!(all, split);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b""), 0);
    }
}

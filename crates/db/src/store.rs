//! [`CoverageDb`]: open, ingest, load, refresh, gc.
//!
//! A database is a directory:
//!
//! ```text
//! db/
//!   MANIFEST.json   — the commit record (atomic rename; see `manifest`)
//!   names.tbl       — append-only interned name table (see `intern`)
//!   seg-<id>.rseg   — one immutable checksummed segment per ingested run
//! ```
//!
//! Ingest protocol (crash-safe by ordering alone):
//!
//! 1. intern any new names and append them to `names.tbl`;
//! 2. write `seg-<id>.rseg` via temp-file + rename;
//! 3. commit by atomically replacing `MANIFEST.json`.
//!
//! A crash before step 3 leaves the new segment unreferenced and the
//! name append past the committed length — both invisible to the next
//! open, and [`CoverageDb::gc`] deletes the orphans. Ingest is
//! idempotent: a run whose key and content hash match a committed
//! segment is skipped, so re-ingesting a resumed campaign is free.

use crate::intern::Interner;
use crate::manifest::{Manifest, RunInfo, RunKey};
use crate::memo::MergeMemo;
use crate::segment::{self, Segment};
use crate::{fnv1a, fnv1a_continue};
use rtlcov_core::CoverageMap;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Why a database operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Filesystem failure (message, since `io::Error` isn't `Clone`).
    Io(String),
    /// On-disk state failed validation (checksum, format, manifest).
    Corrupt(String),
    /// The caller referenced something the database doesn't have.
    NotFound(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "db io error: {e}"),
            DbError::Corrupt(e) => write!(f, "db corrupt: {e}"),
            DbError::NotFound(e) => write!(f, "db: {e} not found"),
        }
    }
}

impl std::error::Error for DbError {}

/// What [`CoverageDb::ingest`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOutcome {
    /// The segment holding the run (new or pre-existing).
    pub id: u64,
    /// `true` when an identical committed run already existed and no new
    /// segment was written.
    pub deduplicated: bool,
}

/// Intern-independent content identity of a run: the key plus every
/// `(name, count)` pair in map order. Two ingests of the same run hash
/// identically even into databases whose intern tables differ.
fn content_hash(key: &RunKey, map: &CoverageMap) -> u64 {
    let mut hash = fnv1a(key.display().as_bytes());
    for (name, count) in map.iter() {
        hash = fnv1a_continue(hash, name.as_bytes());
        hash = fnv1a_continue(hash, &count.to_le_bytes());
    }
    hash
}

/// An embedded coverage database rooted at one directory.
#[derive(Debug)]
pub struct CoverageDb {
    dir: PathBuf,
    manifest: Manifest,
    interner: Interner,
    /// Decoded segment maps, cached by id (segments are immutable).
    seg_cache: Mutex<HashMap<u64, Arc<CoverageMap>>>,
    /// Memoized merge nodes shared by the query layer.
    pub(crate) memo: MergeMemo,
}

impl CoverageDb {
    /// Open (or create) the database at `dir`.
    ///
    /// # Errors
    ///
    /// [`DbError`] when the directory cannot be created or the committed
    /// state fails validation.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, DbError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| DbError::Io(format!("create db dir: {e}")))?;
        let manifest = Manifest::load(&dir)?;
        let interner = if manifest.names_len == 0 {
            Interner::new()
        } else {
            Interner::load(
                &dir.join("names.tbl"),
                manifest.names_len,
                manifest.names_hash,
            )?
        };
        Ok(CoverageDb {
            dir,
            manifest,
            interner,
            seg_cache: Mutex::new(HashMap::new()),
            memo: MergeMemo::new(),
        })
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Committed runs in logical-time order.
    pub fn runs(&self) -> &[RunInfo] {
        &self.manifest.segments
    }

    /// The committed manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Number of interned cover-point names.
    pub fn interned_names(&self) -> usize {
        self.interner.len()
    }

    /// Total bytes of unique name text the intern table stores once
    /// (versus once per run without interning).
    pub fn interned_name_bytes(&self) -> u64 {
        self.interner.name_bytes()
    }

    /// Merge-cache statistics `(hits, misses)`.
    pub fn memo_stats(&self) -> (u64, u64) {
        (self.memo.hits(), self.memo.misses())
    }

    fn segment_file(id: u64) -> String {
        format!("seg-{id}.rseg")
    }

    /// Ingest one run. Returns the committed segment id, deduplicating
    /// against an identical committed run (same key, same content).
    ///
    /// # Errors
    ///
    /// Filesystem failures or verification failures. On error nothing is
    /// committed: the manifest still describes the previous state.
    pub fn ingest(&mut self, key: &RunKey, map: &CoverageMap) -> Result<IngestOutcome, DbError> {
        let content = content_hash(key, map);
        if let Some(existing) = self
            .manifest
            .segments
            .iter()
            .find(|s| s.key == *key && s.content == content)
        {
            return Ok(IngestOutcome {
                id: existing.id,
                deduplicated: true,
            });
        }
        // 1. intern names; append any new ones to the table
        let first_new_id = u32::try_from(self.interner.len()).expect("intern ids fit u32");
        let mut entries: Vec<(u32, u64)> = map
            .iter()
            .map(|(name, count)| (self.interner.intern(name), count))
            .collect();
        entries.sort_unstable_by_key(|&(id, _)| id);
        self.interner
            .append_from(&self.dir.join("names.tbl"), first_new_id)?;

        // 2. write the segment file (temp + rename; invisible until 3)
        let id = self.manifest.next_time;
        let segment = Segment {
            key: key.clone(),
            time: id,
            entries,
        };
        let bytes = segment::encode(&segment);
        let checksum = segment::stored_checksum(&bytes).expect("encode appends a checksum");
        let file = Self::segment_file(id);
        let path = self.dir.join(&file);
        let tmp = self.dir.join(format!("{file}.tmp"));
        fs::write(&tmp, &bytes).map_err(|e| DbError::Io(format!("write segment: {e}")))?;
        fs::rename(&tmp, &path).map_err(|e| DbError::Io(format!("rename segment: {e}")))?;

        // 3. commit
        let mut manifest = self.manifest.clone();
        manifest.next_time = id + 1;
        manifest.names_len = self.interner.committed_len();
        manifest.names_hash = self.interner.committed_hash();
        manifest.segments.push(RunInfo {
            id,
            key: key.clone(),
            file,
            checksum,
            content,
            points: map.len() as u64,
        });
        manifest.commit(&self.dir)?;
        self.manifest = manifest;
        if let Ok(mut cache) = self.seg_cache.lock() {
            cache.insert(id, Arc::new(map.clone()));
        }
        Ok(IngestOutcome {
            id,
            deduplicated: false,
        })
    }

    /// The decoded map of one committed segment (cached after first
    /// load; segment checksums are verified on every disk read).
    ///
    /// # Errors
    ///
    /// [`DbError::NotFound`] for an uncommitted id, [`DbError::Corrupt`]
    /// when the file fails verification or disagrees with the manifest.
    pub fn segment_map(&self, id: u64) -> Result<Arc<CoverageMap>, DbError> {
        if let Some(cached) = self.seg_cache.lock().ok().and_then(|c| c.get(&id).cloned()) {
            return Ok(cached);
        }
        let info = self
            .manifest
            .segments
            .iter()
            .find(|s| s.id == id)
            .ok_or_else(|| DbError::NotFound(format!("segment {id}")))?;
        let bytes = fs::read(self.dir.join(&info.file))
            .map_err(|e| DbError::Io(format!("read segment {id}: {e}")))?;
        let stored = segment::stored_checksum(&bytes);
        if stored != Some(info.checksum) {
            return Err(DbError::Corrupt(format!(
                "segment {id} checksum disagrees with the manifest"
            )));
        }
        let segment = segment::decode(&bytes)?;
        if segment.key != info.key || segment.time != id {
            return Err(DbError::Corrupt(format!(
                "segment {id} metadata disagrees with the manifest"
            )));
        }
        let mut map = CoverageMap::new();
        for (name_id, count) in &segment.entries {
            let name = self.interner.resolve(*name_id).ok_or_else(|| {
                DbError::Corrupt(format!("segment {id} references unknown name id {name_id}"))
            })?;
            map.declare_ref(name);
            map.record_ref(name, *count);
        }
        let map = Arc::new(map);
        if let Ok(mut cache) = self.seg_cache.lock() {
            cache.insert(id, Arc::clone(&map));
        }
        Ok(map)
    }

    /// Re-read the committed state from disk, picking up segments another
    /// process (e.g. a running campaign) committed since open. Caches
    /// survive: segments are immutable, so ids and merge nodes stay
    /// valid.
    ///
    /// # Errors
    ///
    /// Same as [`CoverageDb::open`].
    pub fn refresh(&mut self) -> Result<bool, DbError> {
        let manifest = Manifest::load(&self.dir)?;
        if manifest == self.manifest {
            return Ok(false);
        }
        let interner = if manifest.names_len == 0 {
            Interner::new()
        } else {
            Interner::load(
                &self.dir.join("names.tbl"),
                manifest.names_len,
                manifest.names_hash,
            )?
        };
        self.manifest = manifest;
        self.interner = interner;
        Ok(true)
    }

    /// Delete files the manifest does not reference — segments from
    /// crashed ingests and stale temp files. Returns the deleted paths.
    ///
    /// # Errors
    ///
    /// Filesystem failures while scanning.
    pub fn gc(&self) -> Result<Vec<PathBuf>, DbError> {
        let mut removed = Vec::new();
        let entries =
            fs::read_dir(&self.dir).map_err(|e| DbError::Io(format!("scan db dir: {e}")))?;
        for entry in entries.flatten() {
            let path = entry.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            let referenced = name == "MANIFEST.json"
                || name == "names.tbl"
                || self.manifest.segments.iter().any(|s| s.file == name);
            if !referenced
                && (name.starts_with("seg-") || name.ends_with(".tmp"))
                && fs::remove_file(&path).is_ok()
            {
                removed.push(path);
            }
        }
        removed.sort();
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rtlcov-db-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn map(entries: &[(&str, u64)]) -> CoverageMap {
        let mut m = CoverageMap::new();
        for (k, v) in entries {
            m.record(*k, *v);
        }
        m
    }

    fn key(design: &str, workload: &str) -> RunKey {
        RunKey {
            design: design.into(),
            workload: workload.into(),
            backend: "interp".into(),
            label: "t".into(),
        }
    }

    #[test]
    fn ingest_commit_reopen_round_trips() {
        let dir = tmp("roundtrip");
        let mut db = CoverageDb::open(&dir).unwrap();
        let m = map(&[("top.a", 3), ("top.b", 0), ("top.c", u64::MAX)]);
        let out = db.ingest(&key("gcd", "s0"), &m).unwrap();
        assert!(!out.deduplicated);
        let db2 = CoverageDb::open(&dir).unwrap();
        assert_eq!(db2.runs().len(), 1);
        assert_eq!(*db2.segment_map(out.id).unwrap(), m);
        assert_eq!(db2.interned_names(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ingest_is_idempotent_per_key_and_content() {
        let dir = tmp("idem");
        let mut db = CoverageDb::open(&dir).unwrap();
        let m = map(&[("x", 1)]);
        let first = db.ingest(&key("gcd", "s0"), &m).unwrap();
        let second = db.ingest(&key("gcd", "s0"), &m).unwrap();
        assert!(second.deduplicated);
        assert_eq!(first.id, second.id);
        // same key, different content: a new logical time
        let third = db.ingest(&key("gcd", "s0"), &map(&[("x", 2)])).unwrap();
        assert!(!third.deduplicated);
        assert_eq!(db.runs().len(), 2);
        // same content, different key: also new
        let fourth = db.ingest(&key("gcd", "s1"), &m).unwrap();
        assert!(!fourth.deduplicated);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn names_are_interned_once_across_runs() {
        let dir = tmp("intern");
        let mut db = CoverageDb::open(&dir).unwrap();
        let m = map(&[("top.very.long.hierarchical.name", 1), ("top.other", 2)]);
        db.ingest(&key("gcd", "s0"), &m).unwrap();
        let names_after_one = db.interned_names();
        db.ingest(&key("gcd", "s1"), &m).unwrap();
        db.ingest(&key("gcd", "s2"), &map(&[("top.other", 9)]))
            .unwrap();
        assert_eq!(
            db.interned_names(),
            names_after_one,
            "no new names interned"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_segment_is_invisible_and_gc_removes_it() {
        let dir = tmp("crash");
        let mut db = CoverageDb::open(&dir).unwrap();
        db.ingest(&key("gcd", "s0"), &map(&[("a", 1)])).unwrap();
        // simulate a crash between segment write and manifest commit:
        // an orphan segment file plus a torn name-table append
        let orphan = dir.join("seg-99.rseg");
        fs::write(&orphan, b"RSEGpartial-write").unwrap();
        let mut names = fs::OpenOptions::new()
            .append(true)
            .open(dir.join("names.tbl"))
            .unwrap();
        use std::io::Write;
        names.write_all(b"\x05\x00\x00\x00torn!").unwrap();
        drop(names);

        let reopened = CoverageDb::open(&dir).unwrap();
        assert_eq!(reopened.runs().len(), 1, "orphan is not a run");
        assert!(reopened.segment_map(0).is_ok());
        let removed = reopened.gc().unwrap();
        assert_eq!(removed, vec![orphan.clone()]);
        assert!(!orphan.exists());
        // and the next ingest still works (heals the torn append)
        let mut healed = CoverageDb::open(&dir).unwrap();
        healed.ingest(&key("gcd", "s1"), &map(&[("b", 1)])).unwrap();
        assert_eq!(CoverageDb::open(&dir).unwrap().runs().len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_segment_is_detected_on_load() {
        let dir = tmp("tamper");
        let mut db = CoverageDb::open(&dir).unwrap();
        let out = db.ingest(&key("gcd", "s0"), &map(&[("a", 1)])).unwrap();
        let path = dir.join(CoverageDb::segment_file(out.id));
        let mut bytes = fs::read(&path).unwrap();
        bytes[10] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let fresh = CoverageDb::open(&dir).unwrap();
        assert!(matches!(
            fresh.segment_map(out.id),
            Err(DbError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn refresh_sees_a_concurrent_committer() {
        let dir = tmp("refresh");
        let mut writer = CoverageDb::open(&dir).unwrap();
        writer.ingest(&key("gcd", "s0"), &map(&[("a", 1)])).unwrap();
        let mut reader = CoverageDb::open(&dir).unwrap();
        assert_eq!(reader.runs().len(), 1);
        assert!(!reader.refresh().unwrap(), "no change yet");
        writer.ingest(&key("gcd", "s1"), &map(&[("b", 2)])).unwrap();
        assert!(reader.refresh().unwrap());
        assert_eq!(reader.runs().len(), 2);
        assert_eq!(*reader.segment_map(1).unwrap(), map(&[("b", 2)]));
        fs::remove_dir_all(&dir).unwrap();
    }
}

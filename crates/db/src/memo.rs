//! Incrementally-memoized merging of segment sets.
//!
//! Queries merge the maps of many segments. Segments are immutable, so a
//! merge over a given id set always yields the same map — which makes
//! merge nodes perfectly cacheable by the hash of the id set they cover.
//!
//! The split rule is what makes the cache *incremental*: a list of `n`
//! ids (in logical-time order) splits at the largest power of two
//! strictly below `n`. That decomposition is growth-stable — appending
//! segment `n+1` re-uses every full block of the old decomposition and
//! only re-merges the `O(log n)` nodes on the right spine. After one new
//! ingest, a repeated query recomputes one root path; everything else is
//! a cache hit (the property the bench and the invariant test measure).

use rtlcov_core::CoverageMap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hash of an ordered id list (FNV-1a over the little-endian ids).
fn set_hash(ids: &[u64]) -> u64 {
    let mut hash = crate::fnv1a(b"merge-node");
    for id in ids {
        hash = crate::fnv1a_continue(hash, &id.to_le_bytes());
    }
    hash
}

/// The largest power of two strictly less than `n` (n ≥ 2).
fn split_point(n: usize) -> usize {
    debug_assert!(n >= 2);
    let mut p = 1usize;
    while p * 2 < n {
        p *= 2;
    }
    p
}

/// A cache of merge nodes keyed by segment-id-set hash.
#[derive(Debug, Default)]
pub struct MergeMemo {
    cache: Mutex<HashMap<u64, Arc<CoverageMap>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MergeMemo {
    /// An empty cache.
    pub fn new() -> Self {
        MergeMemo::default()
    }

    /// Cache hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (nodes actually merged) since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cached nodes currently held.
    pub fn len(&self) -> usize {
        self.cache.lock().map(|c| c.len()).unwrap_or(0)
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached node (counters keep running).
    pub fn clear(&self) {
        if let Ok(mut cache) = self.cache.lock() {
            cache.clear();
        }
    }

    /// Merge the maps of `ids` (logical-time order), memoizing every
    /// internal node. `leaf` loads the map of a single segment id.
    pub fn merged<F>(&self, ids: &[u64], leaf: &F) -> Arc<CoverageMap>
    where
        F: Fn(u64) -> Arc<CoverageMap>,
    {
        match ids {
            [] => Arc::new(CoverageMap::new()),
            [only] => leaf(*only),
            _ => {
                let key = set_hash(ids);
                if let Some(cached) = self.cache.lock().ok().and_then(|c| c.get(&key).cloned()) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return cached;
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                let (left, right) = ids.split_at(split_point(ids.len()));
                let mut merged = (*self.merged(left, leaf)).clone();
                merged.merge(&self.merged(right, leaf));
                let node = Arc::new(merged);
                if let Ok(mut cache) = self.cache.lock() {
                    cache.insert(key, Arc::clone(&node));
                }
                node
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn maps(n: u64) -> impl Fn(u64) -> Arc<CoverageMap> {
        move |id| {
            assert!(id < n);
            let mut m = CoverageMap::new();
            m.record("shared", id + 1);
            m.record(format!("only_{id}"), 1);
            Arc::new(m)
        }
    }

    fn reference(ids: &[u64], leaf: &dyn Fn(u64) -> Arc<CoverageMap>) -> CoverageMap {
        let mut out = CoverageMap::new();
        for &id in ids {
            out.merge(&leaf(id));
        }
        out
    }

    #[test]
    fn memoized_merge_equals_sequential_fold() {
        for n in 0u64..24 {
            let memo = MergeMemo::new();
            let leaf = maps(n);
            let ids: Vec<u64> = (0..n).collect();
            let merged = memo.merged(&ids, &leaf);
            assert_eq!(*merged, reference(&ids, &leaf), "n = {n}");
        }
    }

    #[test]
    fn growing_by_one_recomputes_only_the_right_spine() {
        let n = 64u64;
        let leaf = maps(n + 1);
        let memo = MergeMemo::new();
        let ids: Vec<u64> = (0..n).collect();
        memo.merged(&ids, &leaf);
        let cold_misses = memo.misses();
        assert_eq!(memo.hits(), 0);
        // repeat: pure cache hit at the root
        memo.merged(&ids, &leaf);
        assert_eq!(memo.misses(), cold_misses);
        assert_eq!(memo.hits(), 1);
        // grow by one: only O(log n) new nodes merge
        let grown: Vec<u64> = (0..=n).collect();
        let merged = memo.merged(&grown, &leaf);
        let incremental = memo.misses() - cold_misses;
        assert!(
            incremental <= 8,
            "expected O(log {n}) new merges, got {incremental}"
        );
        assert_eq!(*merged, reference(&grown, &leaf));
    }

    #[test]
    fn split_is_the_largest_power_of_two_below_n() {
        assert_eq!(split_point(2), 1);
        assert_eq!(split_point(3), 2);
        assert_eq!(split_point(4), 2);
        assert_eq!(split_point(5), 4);
        assert_eq!(split_point(8), 4);
        assert_eq!(split_point(9), 8);
    }

    #[test]
    fn clear_preserves_counters_and_correctness() {
        let leaf = maps(8);
        let memo = MergeMemo::new();
        let ids: Vec<u64> = (0..8).collect();
        let before = memo.merged(&ids, &leaf);
        memo.clear();
        assert!(memo.is_empty());
        let after = memo.merged(&ids, &leaf);
        assert_eq!(before, after);
    }
}

//! Immutable, checksummed coverage segments.
//!
//! One segment file holds one ingested run: the run key (design,
//! workload, backend, label), the logical time the database assigned at
//! commit, and the run's `(name-id, count)` pairs. The layout extends the
//! `rtlcov-core` codec's conventions (little-endian, length-prefixed
//! strings, strict decoding) but stores interned `u32` ids instead of
//! repeating name bytes in every run:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "RSEG"
//! 4       2     format version (currently 1)
//! 6       2     reserved flags (must be 0)
//! 8       —     design, workload, backend, label: len u32 + UTF-8 bytes
//! —       8     logical time
//! —       8     entry count
//! —       —     entries: name_id u32, count u64 — strictly ascending ids
//! —       8     FNV-1a checksum of every preceding byte
//! ```
//!
//! Strictly ascending ids make duplicates a decode error (mirroring the
//! core codec's `DuplicateName`) and give every map exactly one encoding,
//! so the trailing checksum doubles as a content identity for the file.

use crate::manifest::RunKey;
use crate::{fnv1a, DbError};

/// The magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"RSEG";
/// Segment format version.
pub const SEGMENT_VERSION: u16 = 1;

/// A decoded segment: run key, logical time, and interned entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Who produced this run.
    pub key: RunKey,
    /// Commit-ordered logical time (the database's ingest counter).
    pub time: u64,
    /// `(interned name id, saturating count)`, ids strictly ascending.
    pub entries: Vec<(u32, u64)>,
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encode a segment, appending the trailing checksum.
pub fn encode(segment: &Segment) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + segment.entries.len() * 12);
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    push_str(&mut out, &segment.key.design);
    push_str(&mut out, &segment.key.workload);
    push_str(&mut out, &segment.key.backend);
    push_str(&mut out, &segment.key.label);
    out.extend_from_slice(&segment.time.to_le_bytes());
    out.extend_from_slice(&(segment.entries.len() as u64).to_le_bytes());
    for (id, count) in &segment.entries {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&count.to_le_bytes());
    }
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// The checksum [`encode`] appended to `bytes` (the last 8 bytes).
pub fn stored_checksum(bytes: &[u8]) -> Option<u64> {
    let tail = bytes.len().checked_sub(8)?;
    Some(u64::from_le_bytes(bytes[tail..].try_into().expect("len 8")))
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DbError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(DbError::Corrupt(format!(
                "segment truncated while reading {what}"
            ))),
        }
    }

    fn u16(&mut self, what: &str) -> Result<u16, DbError> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().expect("2"),
        ))
    }

    fn u32(&mut self, what: &str) -> Result<u32, DbError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, DbError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8"),
        ))
    }

    fn string(&mut self, what: &str) -> Result<String, DbError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DbError::Corrupt(format!("segment {what} is not UTF-8")))
    }
}

/// Decode and verify a segment file.
///
/// # Errors
///
/// [`DbError::Corrupt`] on truncation, bad magic/version/flags, a
/// checksum mismatch, out-of-order or duplicate name ids, or trailing
/// bytes. Never panics on untrusted input.
pub fn decode(bytes: &[u8]) -> Result<Segment, DbError> {
    let body_len = bytes
        .len()
        .checked_sub(8)
        .ok_or_else(|| DbError::Corrupt("segment shorter than its checksum".into()))?;
    let stored = stored_checksum(bytes).expect("length checked");
    let actual = fnv1a(&bytes[..body_len]);
    if stored != actual {
        return Err(DbError::Corrupt(format!(
            "segment checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
        )));
    }
    let mut r = Reader {
        bytes: &bytes[..body_len],
        pos: 0,
    };
    let magic = r.take(4, "magic")?;
    if magic != SEGMENT_MAGIC {
        return Err(DbError::Corrupt(format!("bad segment magic {magic:02x?}")));
    }
    let version = r.u16("version")?;
    if version != SEGMENT_VERSION {
        return Err(DbError::Corrupt(format!(
            "unsupported segment version {version}"
        )));
    }
    let flags = r.u16("flags")?;
    if flags != 0 {
        return Err(DbError::Corrupt(format!(
            "unsupported segment flags {flags:#06x}"
        )));
    }
    let key = RunKey {
        design: r.string("design")?,
        workload: r.string("workload")?,
        backend: r.string("backend")?,
        label: r.string("label")?,
    };
    let time = r.u64("logical time")?;
    let count = r.u64("entry count")?;
    let mut entries = Vec::new();
    let mut last: Option<u32> = None;
    for i in 0..count {
        let id = r.u32("entry id")?;
        let value = r.u64("entry value")?;
        if let Some(prev) = last {
            if id == prev {
                return Err(DbError::Corrupt(format!("entry {i} duplicates id {id}")));
            }
            if id < prev {
                return Err(DbError::Corrupt(format!(
                    "entry {i} id {id} out of order after {prev}"
                )));
            }
        }
        last = Some(id);
        entries.push((id, value));
    }
    if r.pos != body_len {
        return Err(DbError::Corrupt(format!(
            "segment has {} trailing bytes before the checksum",
            body_len - r.pos
        )));
    }
    Ok(Segment { key, time, entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Segment {
        Segment {
            key: RunKey {
                design: "gcd".into(),
                workload: "s0".into(),
                backend: "interp".into(),
                label: "nightly".into(),
            },
            time: 7,
            entries: vec![(0, 42), (3, 0), (9, u64::MAX)],
        }
    }

    #[test]
    fn round_trip() {
        let seg = sample();
        assert_eq!(decode(&encode(&seg)).unwrap(), seg);
        let empty = Segment {
            entries: vec![],
            ..sample()
        };
        assert_eq!(decode(&encode(&empty)).unwrap(), empty);
    }

    #[test]
    fn every_truncation_errors_without_panic() {
        let bytes = encode(&sample());
        for len in 0..bytes.len() {
            assert!(decode(&bytes[..len]).is_err(), "prefix {len} decoded");
        }
    }

    #[test]
    fn any_flipped_bit_fails_the_checksum() {
        let bytes = encode(&sample());
        for pos in [0, 5, 13, bytes.len() / 2, bytes.len() - 9, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(decode(&bad).is_err(), "flip at {pos} decoded");
        }
    }

    #[test]
    fn duplicate_and_unsorted_ids_are_rejected() {
        let reject = |entries: Vec<(u32, u64)>| {
            let seg = Segment {
                entries,
                ..sample()
            };
            // encode writes whatever it is given; decode is the gatekeeper
            assert!(decode(&encode(&seg)).is_err());
        };
        reject(vec![(4, 1), (4, 2)]);
        reject(vec![(5, 1), (2, 2)]);
    }
}

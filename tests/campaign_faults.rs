//! Fault-tolerance integration tests: a campaign under injected faults
//! must finish (no abort, no hang), classify every job correctly, degrade
//! quarantined backends down the fallback chain, and — the core
//! guarantee — produce a merged map bit-identical to the fault-free map
//! restricted to the jobs that actually completed. Injected panics print
//! their payloads to stderr; that noise is expected.

use proptest::prelude::*;
use rtlcov::campaign::runner::{run_campaign, CampaignConfig, JobOutcome};
use rtlcov::campaign::{Backend, FaultKind, FaultPlan, FaultSite, JobSpec};
use rtlcov::core::instrument::Metrics;
use rtlcov::core::CoverageMap;
use rtlcov::designs::workloads::campaign_workload;
use rtlcov::sim::SimKind;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const INTERP: Backend = Backend::Sim(SimKind::Interp);
const ESSENT: Backend = Backend::Sim(SimKind::Essent);
const COMPILED: Backend = Backend::Sim(SimKind::Compiled);

fn unique_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("rtlcov-faults-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn base_config(designs: &[&str], backends: &[Backend]) -> CampaignConfig {
    CampaignConfig {
        designs: designs.iter().map(|s| s.to_string()).collect(),
        backends: backends.to_vec(),
        metrics: Metrics::line_only(),
        shards: 2,
        workers: 4,
        ..CampaignConfig::default()
    }
}

/// Ground truth for one (design, shard): every backend produces this very
/// map (backend equivalence), so it is what any Completed/Degraded/
/// Resumed job must have contributed to the merge.
fn ground_truth_map(config: &CampaignConfig, design: &str, shard: u64) -> CoverageMap {
    let workload = campaign_workload(design, 0, 1).unwrap();
    let inst = rtlcov::core::instrument::CoverageCompiler::new(config.metrics)
        .run(workload.circuit)
        .unwrap();
    let mut sim = SimKind::Interp.build(&inst.circuit).unwrap();
    campaign_workload(design, shard, config.scale)
        .unwrap()
        .run(&mut *sim)
}

/// The merge a fault-free scheduler would produce from exactly the jobs
/// that ended in a coverage-contributing outcome.
fn expected_per_design(
    config: &CampaignConfig,
    outcomes: &[(JobSpec, JobOutcome)],
    design: &str,
) -> CoverageMap {
    let mut contributing: Vec<CoverageMap> = Vec::new();
    for (job, outcome) in outcomes {
        if job.design != design {
            continue;
        }
        if matches!(
            outcome,
            JobOutcome::Completed | JobOutcome::Resumed | JobOutcome::Degraded { .. }
        ) {
            contributing.push(ground_truth_map(config, design, job.shard));
        }
    }
    let refs: Vec<&CoverageMap> = contributing.iter().collect();
    CoverageMap::merge_many(&refs)
}

fn outcome_of<'a>(outcomes: &'a [(JobSpec, JobOutcome)], id: &str) -> &'a JobOutcome {
    &outcomes
        .iter()
        .find(|(job, _)| job.id() == id)
        .unwrap_or_else(|| panic!("no outcome for {id}"))
        .1
}

/// The issue's acceptance scenario in one campaign: an injected panic
/// (transient, survived by retry), a stall beyond the fuel deadline, a
/// corrupted shard write (caught by read-back verification, survived by
/// retry), and a hard error that quarantines a (design, backend) pair and
/// degrades its jobs down the fallback chain.
#[test]
fn acceptance_panic_stall_corruption_and_degradation() {
    let dir = unique_dir("acceptance");
    let plan = FaultPlan::parse(
        "panic@gcd:0:interp=1,stall@gcd:1:interp,corrupt@queue:0:interp=1,error@queue:*:fpga",
    )
    .unwrap();
    let config = CampaignConfig {
        shard_dir: Some(dir.clone()),
        faults: Some(Arc::new(plan)),
        ..base_config(&["gcd", "queue"], &[INTERP, Backend::Fpga])
    };
    let faulty = run_campaign(&config).expect("faults must never abort the campaign");
    let clean = run_campaign(&CampaignConfig {
        faults: None,
        shard_dir: None,
        ..config.clone()
    })
    .unwrap();

    // per-job classification
    assert_eq!(
        outcome_of(&faulty.outcomes, "gcd--s0--interp"),
        &JobOutcome::Completed,
        "budget-1 panic must be survived by a retry"
    );
    assert_eq!(
        outcome_of(&faulty.outcomes, "gcd--s1--interp"),
        &JobOutcome::TimedOut,
        "a stalled job must end at the fuel deadline, not hang"
    );
    assert_eq!(
        outcome_of(&faulty.outcomes, "queue--s0--interp"),
        &JobOutcome::Completed,
        "budget-1 corruption must be caught by read-back and survived by a retry"
    );
    for shard in 0..2 {
        assert_eq!(
            outcome_of(&faulty.outcomes, &format!("queue--s{shard}--fpga")),
            &JobOutcome::Degraded {
                from: Backend::Fpga,
                to: COMPILED,
            },
            "a hard-faulted backend must degrade down the fallback chain"
        );
    }
    assert_eq!(
        outcome_of(&faulty.outcomes, "gcd--s0--fpga"),
        &JobOutcome::Completed,
        "faults on queue/fpga must not leak onto gcd/fpga"
    );

    // bookkeeping
    assert!(!faulty.healthy(), "a timed-out job marks the run unhealthy");
    assert!(faulty
        .stats
        .quarantined
        .contains(&("queue".to_string(), Backend::Fpga)));
    assert_eq!(faulty.stats.per_backend["interp"].panics, 1);
    assert_eq!(faulty.stats.per_backend["interp"].timeouts, 1);
    assert!(faulty.stats.per_backend["interp"].failures >= 2); // panic + persist
                                                               // at least one fpga job fails twice before quarantining the pair; the
                                                               // other may be redirected at pop time without ever attempting fpga
    assert!(faulty.stats.per_backend["fpga"].failures >= 2);
    assert_eq!(faulty.stats.per_backend["fpga"].degraded_from, 2);
    assert_eq!(faulty.stats.per_backend["compiled"].degraded_to, 2);
    let health = rtlcov::campaign::report::health(&faulty);
    assert!(health.contains("UNHEALTHY"), "{health}");
    assert!(health.contains("1 timed out"), "{health}");
    let summary = rtlcov::campaign::report::summary(&faulty);
    assert!(summary.contains("quarantined: queue/fpga"), "{summary}");

    // queue had no timeouts: every job completed (some degraded), so its
    // merge must be bit-identical to the fault-free campaign's
    assert_eq!(
        faulty.per_design["queue"], clean.per_design["queue"],
        "degradation and retried corruption must not change the merge by a bit"
    );

    // gcd's timed-out job contributed a deterministic fuel-limited
    // partial map: reproduce it and check the merge is exactly
    // (completed jobs' ground truth) + (that partial)
    let workload = campaign_workload("gcd", 1, config.scale).unwrap();
    let inst = rtlcov::core::instrument::CoverageCompiler::new(config.metrics)
        .run(campaign_workload("gcd", 0, 1).unwrap().circuit)
        .unwrap();
    let mut sim = SimKind::Interp.build(&inst.circuit).unwrap();
    sim.set_fuel((workload.trace.cycles() as u64 / 2).max(1));
    workload.run(&mut *sim);
    while !sim.out_of_fuel() {
        sim.step();
    }
    let partial = sim.cover_counts();
    // gcd jobs: interp s0 (full), interp s1 (partial), fpga s0 and s1 (full)
    let full_s0 = ground_truth_map(&config, "gcd", 0);
    let full_s1 = ground_truth_map(&config, "gcd", 1);
    let expected_gcd = CoverageMap::merge_many(&[&full_s0, &partial, &full_s0, &full_s1]);
    assert_eq!(
        faulty.per_design["gcd"], expected_gcd,
        "timed-out partial coverage must merge deterministically"
    );

    // the timed-out job must not have persisted a shard: a resumed
    // campaign re-runs it (and, fault-free, completes it)
    let resumed = run_campaign(&CampaignConfig {
        faults: None,
        ..config.clone()
    })
    .unwrap();
    assert_eq!(
        outcome_of(&resumed.outcomes, "gcd--s1--interp"),
        &JobOutcome::Completed
    );
    // 7 persisted shards resume: the 5 completed jobs plus the 2 degraded
    // queue/fpga jobs (persisted under their original spec)
    assert_eq!(resumed.resumed(), 7, "all healthy shards resume");
    assert_eq!(resumed.merged, clean.merged);
    assert!(resumed.healthy());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Crash-resume: a campaign whose job panics mid-flight (terminally — the
/// panic chases the job down the whole chain) persists everything else;
/// resuming without faults re-runs exactly the lost job and reproduces
/// the uninterrupted merge bit-for-bit.
#[test]
fn crash_resume_reproduces_the_uninterrupted_merge() {
    let dir = unique_dir("resume");
    let config = CampaignConfig {
        shard_dir: Some(dir.clone()),
        // one worker makes the quarantine cascade deterministic: both
        // queue shard-0 jobs complete before shard 1 poisons the chain
        workers: 1,
        ..base_config(&["gcd", "queue"], &[INTERP, ESSENT])
    };
    let uninterrupted = run_campaign(&CampaignConfig {
        shard_dir: None,
        ..config.clone()
    })
    .unwrap();

    let crashed = run_campaign(&CampaignConfig {
        faults: Some(Arc::new(FaultPlan::parse("panic@queue:1:*").unwrap())),
        ..config.clone()
    })
    .unwrap();
    let panicked: Vec<&JobSpec> = crashed
        .outcomes
        .iter()
        .filter(|(_, o)| matches!(o, JobOutcome::Panicked(_)))
        .map(|(job, _)| job)
        .collect();
    assert_eq!(crashed.panicked(), 2, "queue shard 1 dies on both backends");
    assert!(panicked.iter().all(|j| j.design == "queue" && j.shard == 1));
    assert!(!crashed.healthy());
    assert!(crashed.stats.per_backend["interp"].panics >= 1);

    let resumed = run_campaign(&config).unwrap();
    assert_eq!(resumed.resumed(), 6, "healthy shards were all persisted");
    assert_eq!(resumed.completed(), 2, "exactly the lost jobs re-run");
    assert!(resumed.healthy());
    assert_eq!(
        resumed.merged, uninterrupted.merged,
        "crash + resume must be invisible in the merged map"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Worker-thread death outside the unwind guard — including dying while
/// holding the queue mutex, poisoning it — must be healed by the
/// supervisor: in-flight jobs recovered and retried, workers respawned,
/// and the final merge identical to a fault-free run.
#[test]
fn supervisor_respawns_workers_and_recovers_their_jobs() {
    let config = CampaignConfig {
        shards: 3,
        workers: 2,
        max_retries: 2,
        ..base_config(&["gcd"], &[INTERP])
    };
    let clean = run_campaign(&config).unwrap();
    let plan = FaultPlan::parse("kill-worker@gcd:0:interp=1,poison-queue@gcd:1:interp=1").unwrap();
    let faulty = run_campaign(&CampaignConfig {
        faults: Some(Arc::new(plan)),
        ..config.clone()
    })
    .unwrap();
    assert!(faulty.healthy(), "outcomes: {:?}", faulty.outcomes);
    assert_eq!(faulty.completed(), 3);
    assert_eq!(faulty.stats.respawned_workers, 2);
    assert!(faulty.stats.per_backend["interp"].retries >= 2);
    assert_eq!(
        faulty.merged, clean.merged,
        "worker deaths must not change the merge by a bit"
    );
    let summary = rtlcov::campaign::report::summary(&faulty);
    assert!(summary.contains("respawned workers: 2"), "{summary}");
}

/// A worker pool that keeps dying must not hang the campaign: with an
/// unbudgeted kill fault on every job, the respawn budget runs out and
/// every remaining job ends terminally instead of waiting forever.
#[test]
fn exhausted_worker_pool_fails_jobs_instead_of_hanging() {
    let config = CampaignConfig {
        shards: 4,
        workers: 1,
        max_retries: 0,
        faults: Some(Arc::new(FaultPlan::parse("kill-worker@*:*:*").unwrap())),
        ..base_config(&["gcd"], &[INTERP])
    };
    let result = run_campaign(&config).expect("must terminate");
    assert!(!result.healthy());
    assert_eq!(result.completed(), 0);
    assert_eq!(
        result.panicked() + result.failed(),
        4,
        "every job accounted for: {:?}",
        result.outcomes
    );
}

/// Decode a generated index tuple into a fault site over the recoverable
/// kinds (the vendored proptest subset has no `prop_oneof`/`prop_map`,
/// so the choice axes are generated as small integers).
fn decode_site(((kind, design, shard), (backend, budget)): ((u8, u8, u8), (u8, u8))) -> FaultSite {
    FaultSite {
        kind: [FaultKind::Panic, FaultKind::Error, FaultKind::Corrupt][kind as usize],
        design: [Some("gcd"), Some("queue"), None][design as usize].map(str::to_string),
        shard: [Some(0u64), Some(1u64), None][shard as usize],
        backend: [Some(INTERP), Some(ESSENT), None][backend as usize],
        budget: [Some(1u32), Some(2u32), None][budget as usize],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))] // each case runs a full campaign

    /// The no-corruption-leak property: under ANY plan of injected
    /// panics, errors, and corrupt shard writes, the campaign terminates
    /// and each design's merged map is bit-identical to the fault-free
    /// merge of exactly the jobs that ended Completed/Degraded/Resumed —
    /// failed jobs contribute nothing, corrupted bytes never leak in.
    #[test]
    fn merged_map_is_exactly_the_completed_jobs(
        raw_sites in prop::collection::vec(((0u8..3, 0u8..3, 0u8..3), (0u8..3, 0u8..3)), 0..4)
    ) {
        let sites: Vec<FaultSite> = raw_sites.into_iter().map(decode_site).collect();
        let dir = unique_dir("prop");
        let config = CampaignConfig {
            shard_dir: Some(dir.clone()),
            workers: 2,
            faults: Some(Arc::new(FaultPlan::from_sites(sites))),
            ..base_config(&["gcd", "queue"], &[INTERP, ESSENT])
        };
        let result = run_campaign(&config).expect("faults must never abort the campaign");
        prop_assert_eq!(result.timed_out(), 0, "no stall faults injected");
        // every scheduled job has exactly one outcome
        let expected_jobs = rtlcov::campaign::job_list(&config).len();
        prop_assert_eq!(result.outcomes.len(), expected_jobs);
        let mut seen = HashMap::new();
        for (job, _) in &result.outcomes {
            *seen.entry(job.id()).or_insert(0u32) += 1;
        }
        prop_assert!(seen.values().all(|&n| n == 1), "duplicate outcomes: {seen:?}");
        for design in ["gcd", "queue"] {
            let expected = expected_per_design(&config, &result.outcomes, design);
            prop_assert_eq!(
                &result.per_design[design], &expected,
                "design {} diverged from its completed-jobs ground truth", design
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

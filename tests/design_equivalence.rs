//! Random-stimulus equivalence across the three software backends for
//! every benchmark design (complementing the riscv-mini-focused
//! `backend_equivalence.rs`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtlcov::core::instrument::{CoverageCompiler, Metrics};
use rtlcov::core::CoverageMap;
use rtlcov::firrtl::Circuit;
use rtlcov::sim::{compiled::CompiledSim, essent::EssentSim, interp::InterpSim, Simulator};

fn random_run(
    sim: &mut dyn Simulator,
    inputs: &[(String, u32)],
    seed: u64,
    cycles: usize,
) -> (CoverageMap, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    sim.reset(1);
    for _ in 0..cycles {
        for (name, width) in inputs {
            let mask = if *width >= 64 {
                u64::MAX
            } else {
                (1 << width) - 1
            };
            sim.poke(name, rng.gen::<u64>() & mask);
        }
        sim.step();
    }
    let outputs: Vec<u64> = sim
        .signals()
        .iter()
        .filter(|s| !s.contains('.'))
        .map(|s| sim.peek(s))
        .collect();
    (sim.cover_counts(), outputs)
}

fn check_design(circuit: Circuit, cycles: usize) {
    let inst = CoverageCompiler::new(Metrics::all()).run(circuit).unwrap();
    let flat = rtlcov::sim::elaborate::elaborate(&inst.circuit).unwrap();
    let inputs: Vec<(String, u32)> = flat
        .inputs
        .iter()
        .filter(|n| n.as_str() != "reset")
        .map(|n| (n.clone(), flat.signals[n].width))
        .collect();

    let mut compiled = CompiledSim::new(&inst.circuit).unwrap();
    let mut interp = InterpSim::new(&inst.circuit).unwrap();
    let mut essent = EssentSim::new(&inst.circuit).unwrap();
    let a = random_run(&mut compiled, &inputs, 42, cycles);
    let b = random_run(&mut interp, &inputs, 42, cycles);
    let c = random_run(&mut essent, &inputs, 42, cycles);
    assert_eq!(a.0, b.0, "coverage: compiled vs interp");
    assert_eq!(a.0, c.0, "coverage: compiled vs essent");
    assert_eq!(a.1, b.1, "signals: compiled vs interp");
    assert_eq!(a.1, c.1, "signals: compiled vs essent");
    assert!(a.0.covered() > 0, "random stimulus covers something");
}

#[test]
fn gcd_equivalence() {
    check_design(rtlcov::designs::gcd::gcd(16), 300);
}

#[test]
fn tlram_equivalence() {
    check_design(rtlcov::designs::tlram::tlram(32, 64), 300);
}

#[test]
fn serv_equivalence() {
    check_design(rtlcov::designs::serv_like::serv_like(16), 300);
}

#[test]
fn neuroproc_equivalence() {
    check_design(rtlcov::designs::neuroproc_like::neuroproc_like(8), 300);
}

#[test]
fn i2c_equivalence() {
    check_design(rtlcov::designs::i2c::i2c(), 500);
}

#[test]
fn queue_equivalence() {
    check_design(rtlcov::designs::queue::queue(8, 4), 300);
}

#[test]
fn fsm_examples_equivalence() {
    check_design(rtlcov::designs::fsm_examples::figure7(), 200);
    check_design(rtlcov::designs::fsm_examples::traffic_light(), 200);
}

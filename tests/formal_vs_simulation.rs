//! Formal/simulation consistency: BMC witness traces must replay on the
//! software simulators, and covers proven unreachable must never fire in
//! (bounded) random simulation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtlcov::core::instrument::{CoverageCompiler, Metrics};
use rtlcov::formal::bmc::{check_covers, BmcOptions, CoverOutcome};
use rtlcov::sim::compiled::CompiledSim;
use rtlcov::sim::elaborate::elaborate;
use rtlcov::sim::Simulator;

fn instrumented(src: &str) -> rtlcov::core::instrument::Instrumented {
    let circuit = rtlcov::firrtl::parser::parse(src).unwrap();
    CoverageCompiler::new(Metrics::line_only())
        .run(circuit)
        .unwrap()
}

const MAZE: &str = "
circuit Maze :
  module Maze :
    input clock : Clock
    input reset : UInt<1>
    input step : UInt<2>
    output at : UInt<3>
    reg pos : UInt<3>, clock with : (reset => (reset, UInt<3>(0)))
    at <= pos
    when eq(pos, UInt<3>(0)) :
      when eq(step, UInt<2>(1)) :
        pos <= UInt<3>(1)
    else when eq(pos, UInt<3>(1)) :
      when eq(step, UInt<2>(2)) :
        pos <= UInt<3>(2)
      else when eq(step, UInt<2>(3)) :
        pos <= UInt<3>(0)
    else when eq(pos, UInt<3>(2)) :
      when eq(step, UInt<2>(1)) :
        pos <= UInt<3>(5)
";

#[test]
fn every_reached_cover_replays_on_the_simulator() {
    let inst = instrumented(MAZE);
    let flat = elaborate(&inst.circuit).unwrap();
    let results = check_covers(
        &flat,
        BmcOptions {
            max_steps: 10,
            ..Default::default()
        },
    )
    .unwrap();
    let mut reached = 0;
    for r in &results {
        if let CoverOutcome::Reached { trace, .. } = &r.outcome {
            reached += 1;
            let mut sim = CompiledSim::new(&inst.circuit).unwrap();
            let counts = trace.replay(&mut sim);
            assert!(
                counts.count(&r.name).unwrap_or(0) > 0,
                "witness for {} does not replay: {counts}",
                r.name
            );
        }
    }
    assert!(reached >= 4, "only {reached} covers reached");
}

#[test]
fn unreachable_verdicts_agree_with_random_simulation() {
    let inst = instrumented(MAZE);
    let flat = elaborate(&inst.circuit).unwrap();
    let results = check_covers(
        &flat,
        BmcOptions {
            max_steps: 12,
            ..Default::default()
        },
    )
    .unwrap();
    let unreachable: Vec<&str> = results
        .iter()
        .filter(|r| matches!(r.outcome, CoverOutcome::UnreachableWithin(_)))
        .map(|r| r.name.as_str())
        .collect();
    // random simulation within the same bound must never hit them
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..200 {
        let mut sim = CompiledSim::new(&inst.circuit).unwrap();
        sim.reset(1);
        for _ in 0..12 {
            sim.poke("step", rng.gen_range(0..4));
            sim.step();
        }
        let counts = sim.cover_counts();
        for name in &unreachable {
            assert_eq!(counts.count(name), Some(0), "{name} fired in simulation!");
        }
    }
}

#[test]
fn deeper_bounds_reach_monotonically_more() {
    let inst = instrumented(MAZE);
    let flat = elaborate(&inst.circuit).unwrap();
    let count_reached = |k: usize| -> usize {
        check_covers(
            &flat,
            BmcOptions {
                max_steps: k,
                ..Default::default()
            },
        )
        .unwrap()
        .iter()
        .filter(|r| matches!(r.outcome, CoverOutcome::Reached { .. }))
        .count()
    };
    let shallow = count_reached(2);
    let deep = count_reached(8);
    assert!(deep >= shallow);
    assert!(deep > 0);
}

#[test]
fn fsm_transitions_and_formal_agree_on_figure7() {
    // every transition the FSM analysis emits for Figure 7 is exact, so
    // formal must find a witness for all of them
    let inst = CoverageCompiler::new(Metrics::fsm_only())
        .run(rtlcov::designs::fsm_examples::figure7())
        .unwrap();
    assert!(!inst.artifacts.fsm.fsms[0].over_approximated);
    let flat = elaborate(&inst.circuit).unwrap();
    let results = check_covers(
        &flat,
        BmcOptions {
            max_steps: 10,
            ..Default::default()
        },
    )
    .unwrap();
    for r in &results {
        assert!(
            matches!(r.outcome, CoverOutcome::Reached { .. }),
            "{}: {:?}",
            r.name,
            r.outcome
        );
    }
}

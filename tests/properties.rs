//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;
use rtlcov::core::CoverageMap;
use rtlcov::firrtl::bv::Bv;
use rtlcov::firrtl::eval::const_fold;
use rtlcov::firrtl::ir::{Expr, PrimOp};
use rtlcov::firrtl::{parser, printer};

proptest! {
    // ------------------------------------------------------------- Bv --

    #[test]
    fn bv_add_matches_u128(a in any::<u64>(), b in any::<u64>(), w in 1u32..=64) {
        let x = Bv::from_u64(a, w);
        let y = Bv::from_u64(b, w);
        let sum = x.add(&y);
        // the w+1-bit result never overflows, so the u128 sum is exact
        let expect = x.to_u128() + y.to_u128();
        prop_assert_eq!(sum.to_u128(), expect);
        prop_assert_eq!(sum.width(), w + 1);
    }

    #[test]
    fn bv_sub_then_add_roundtrips(a in any::<u64>(), b in any::<u64>(), w in 1u32..=63) {
        let x = Bv::from_u64(a, w);
        let y = Bv::from_u64(b, w);
        // (x - y) + y ≡ x (mod 2^w)
        let diff = x.sub(&y).bits(w - 1, 0);
        let back = diff.add(&y).bits(w - 1, 0);
        prop_assert_eq!(back, x);
    }

    #[test]
    fn bv_mul_matches_u128(a in any::<u32>(), b in any::<u32>()) {
        let x = Bv::from_u64(a as u64, 32);
        let y = Bv::from_u64(b as u64, 32);
        prop_assert_eq!(x.mul(&y).to_u128(), (a as u128) * (b as u128));
    }

    #[test]
    fn bv_cat_bits_inverse(a in any::<u64>(), b in any::<u64>(), wa in 1u32..=32, wb in 1u32..=32) {
        let x = Bv::from_u64(a, wa);
        let y = Bv::from_u64(b, wb);
        let c = x.cat(&y);
        prop_assert_eq!(c.bits(wa + wb - 1, wb), x);
        prop_assert_eq!(c.bits(wb - 1, 0), y);
    }

    #[test]
    fn bv_comparisons_match_native(a in any::<u64>(), b in any::<u64>(), w in 1u32..=64) {
        let mask = if w == 64 { u64::MAX } else { (1 << w) - 1 };
        let (am, bm) = (a & mask, b & mask);
        let x = Bv::from_u64(am, w);
        let y = Bv::from_u64(bm, w);
        prop_assert_eq!(x.ult(&y), am < bm);
        let sx = x.to_i64();
        let sy = y.to_i64();
        prop_assert_eq!(x.slt(&y), sx < sy);
    }

    #[test]
    fn bv_shift_roundtrip(a in any::<u64>(), w in 1u32..=48, s in 0u32..16) {
        let x = Bv::from_u64(a, w);
        // (x << s) >> s == x
        prop_assert_eq!(x.shl(s).shr(s), x);
    }

    #[test]
    fn bv_not_involution(a in any::<u64>(), w in 1u32..=64) {
        let x = Bv::from_u64(a, w);
        prop_assert_eq!(x.not().not(), x);
    }

    // --------------------------------------------------- constant fold --

    #[test]
    fn const_fold_add_is_exact(a in any::<u32>(), b in any::<u32>()) {
        let e = Expr::prim(
            PrimOp::Add,
            vec![Expr::u(a as u64, 32), Expr::u(b as u64, 32)],
            vec![],
        );
        let v = const_fold(&e).unwrap();
        prop_assert_eq!(v.bits.to_u64(), a as u64 + b as u64);
    }

    // -------------------------------------------------- coverage map --

    #[test]
    fn coverage_merge_is_commutative(
        entries_a in prop::collection::vec(("[a-d]", 0u64..1000), 0..8),
        entries_b in prop::collection::vec(("[a-d]", 0u64..1000), 0..8),
    ) {
        let a: CoverageMap = entries_a.into_iter().collect();
        let b: CoverageMap = entries_b.into_iter().collect();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn coverage_merge_never_loses_points(
        entries in prop::collection::vec(("[a-f]{1,3}", 0u64..10), 0..16),
    ) {
        let a: CoverageMap = entries.clone().into_iter().collect();
        let mut merged = CoverageMap::new();
        merged.merge(&a);
        prop_assert_eq!(merged.len(), a.len());
        for (name, count) in a.iter() {
            prop_assert_eq!(merged.count(name), Some(count));
        }
    }

    // ------------------------------------------------- parser/printer --

    #[test]
    fn print_parse_roundtrip_for_random_counters(
        width in 1u32..=32,
        init in 0u64..1000,
        step in 1u64..16,
    ) {
        let src = format!(
            "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    output o : UInt<{width}>
    reg r : UInt<{width}>, clock with : (reset => (reset, UInt<{width}>({init})))
    r <= tail(add(r, UInt<{width}>({step})), 1)
    o <= r
    cover(clock, eq(r, UInt<{width}>(0)), UInt<1>(1)) : wrap
"
        );
        let c1 = parser::parse(&src).unwrap();
        let text = printer::print_circuit(&c1);
        let c2 = parser::parse(&text).unwrap();
        prop_assert_eq!(c1, c2);
    }

    // ----------------------------------------------------- mutators --

    #[test]
    fn mutations_preserve_nonemptiness(seed in any::<u64>(), len in 1usize..128) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut input = vec![0xa5u8; len];
        for _ in 0..16 {
            rtlcov::fuzz::mutate::mutate(&mut input, &mut rng);
            prop_assert!(!input.is_empty());
            prop_assert!(input.len() <= 16 * 4096, "len {}", input.len());
        }
    }
}

// deterministic sanity companion for the messy width-65 add masking above
#[test]
fn bv_add_edge_width_64() {
    let x = Bv::from_u64(u64::MAX, 64);
    let y = Bv::from_u64(u64::MAX, 64);
    let s = x.add(&y);
    assert_eq!(s.width(), 65);
    assert_eq!(s.to_u128(), (u64::MAX as u128) * 2);
}

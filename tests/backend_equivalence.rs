//! Cross-backend equivalence: the paper's §3 claim that every backend
//! reports the *same* coverage interface. We run identical stimulus on the
//! interpreter (Treadle analog), the compiled simulator (Verilator
//! analog), the activity-driven simulator (ESSENT analog) and the emulated
//! FPGA host (FireSim analog) and require bit-identical `CoverageMap`s.

use rtlcov::core::instrument::{CoverageCompiler, Metrics};
use rtlcov::core::CoverageMap;
use rtlcov::designs::programs::{isa_suite, Program};
use rtlcov::designs::riscv_mini::riscv_mini_with;
use rtlcov::fpga::{insert_scan_chain, FpgaHost};
use rtlcov::sim::{compiled::CompiledSim, essent::EssentSim, interp::InterpSim, Simulator};

const CYCLES: usize = 1200;

fn run_program(sim: &mut dyn Simulator, p: &Program) -> CoverageMap {
    p.load(sim, "icache.mem", "dcache.mem").unwrap();
    sim.reset(2);
    sim.step_n(CYCLES);
    sim.cover_counts()
}

#[test]
fn software_backends_agree_on_riscv_mini() {
    let inst = CoverageCompiler::new(Metrics::all())
        .run(riscv_mini_with(256))
        .unwrap();
    for (name, program) in isa_suite() {
        let mut compiled = CompiledSim::new(&inst.circuit).unwrap();
        let mut interp = InterpSim::new(&inst.circuit).unwrap();
        let mut essent = EssentSim::new(&inst.circuit).unwrap();
        let a = run_program(&mut compiled, &program);
        let b = run_program(&mut interp, &program);
        let c = run_program(&mut essent, &program);
        assert_eq!(a, b, "compiled vs interp on {name}");
        assert_eq!(a, c, "compiled vs essent on {name}");
        assert!(a.covered() > 0, "{name} covers something");
    }
}

#[test]
fn fpga_host_agrees_with_software() {
    // wide counters so no saturation differences
    let inst = CoverageCompiler::new(Metrics::line_only())
        .run(riscv_mini_with(256))
        .unwrap();
    let (_, program) = isa_suite().remove(0);

    let mut sw = CompiledSim::new(&inst.circuit).unwrap();
    let sw_counts = run_program(&mut sw, &program);

    let mut fpga_circuit = inst.circuit.clone();
    let info = insert_scan_chain(&mut fpga_circuit, 32).unwrap();
    let mut host = FpgaHost::new(&fpga_circuit, info).unwrap();
    for (addr, word) in program.text.iter().enumerate() {
        host.write_mem("icache.mem", addr as u64, *word as u64)
            .unwrap();
    }
    host.reset(2);
    host.run(CYCLES as u64);
    let (fpga_counts, _) = host.scan_out_counts();

    assert_eq!(sw_counts, fpga_counts);
}

#[test]
fn narrow_fpga_counters_saturate_but_preserve_coverage_set() {
    let inst = CoverageCompiler::new(Metrics::line_only())
        .run(riscv_mini_with(256))
        .unwrap();
    let (_, program) = isa_suite().remove(4); // memory test
    let mut sw = CompiledSim::new(&inst.circuit).unwrap();
    let sw_counts = run_program(&mut sw, &program);

    let mut fpga_circuit = inst.circuit.clone();
    let info = insert_scan_chain(&mut fpga_circuit, 2).unwrap();
    let mut host = FpgaHost::new(&fpga_circuit, info).unwrap();
    for (addr, word) in program.text.iter().enumerate() {
        host.write_mem("icache.mem", addr as u64, *word as u64)
            .unwrap();
    }
    host.reset(2);
    host.run(CYCLES as u64);
    let (fpga_counts, _) = host.scan_out_counts();

    // counts saturate at 3, but the covered/uncovered *set* is identical —
    // "as long as we are only interested in finding lines that have never
    // been covered, small counters offer minimal area overhead" (§5.2)
    for (name, sw_count) in sw_counts.iter() {
        let fpga_count = fpga_counts.count(name).unwrap();
        assert_eq!(sw_count.min(3), fpga_count.min(3), "{name}");
        assert_eq!(sw_count == 0, fpga_count == 0, "{name}");
    }
}

#[test]
fn merging_across_backends_is_exact() {
    let inst = CoverageCompiler::new(Metrics::line_only())
        .run(riscv_mini_with(256))
        .unwrap();
    let suite = isa_suite();
    // union of per-backend runs equals a union of same-backend runs
    let mut merged_mixed = CoverageMap::new();
    let mut merged_same = CoverageMap::new();
    for (i, (_, program)) in suite.iter().enumerate().take(3) {
        let counts_same = {
            let mut sim = CompiledSim::new(&inst.circuit).unwrap();
            run_program(&mut sim, program)
        };
        let counts_mixed = match i % 3 {
            0 => {
                let mut sim = CompiledSim::new(&inst.circuit).unwrap();
                run_program(&mut sim, program)
            }
            1 => {
                let mut sim = InterpSim::new(&inst.circuit).unwrap();
                run_program(&mut sim, program)
            }
            _ => {
                let mut sim = EssentSim::new(&inst.circuit).unwrap();
                run_program(&mut sim, program)
            }
        };
        merged_same.merge(&counts_same);
        merged_mixed.merge(&counts_mixed);
    }
    assert_eq!(merged_same, merged_mixed);
}

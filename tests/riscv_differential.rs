//! Differential testing: random RV32I programs run on the golden-model
//! ISS and on the RTL core (compiled backend), and the architectural
//! state — register file, data memory, retired count — must agree.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtlcov::designs::iss::Iss;
use rtlcov::designs::programs::{asm, Program};
use rtlcov::designs::riscv_mini::riscv_mini_with;
use rtlcov::firrtl::passes;
use rtlcov::sim::compiled::CompiledSim;
use rtlcov::sim::Simulator;

const DMEM_WORDS: usize = 256;

/// Generate a random straight-line program ending in `ecall`: ALU ops,
/// word loads/stores within the data memory, and short forward branches.
fn random_program(rng: &mut StdRng, len: usize) -> Vec<u32> {
    let mut text = Vec::with_capacity(len + 1);
    for i in 0..len {
        let rd = rng.gen_range(0..8);
        let rs1 = rng.gen_range(0..8);
        let rs2 = rng.gen_range(0..8);
        let insn = match rng.gen_range(0..14) {
            0 => asm::addi(rd, rs1, rng.gen_range(-512..512)),
            1 => asm::add(rd, rs1, rs2),
            2 => asm::sub(rd, rs1, rs2),
            3 => asm::and(rd, rs1, rs2),
            4 => asm::or(rd, rs1, rs2),
            5 => asm::xor(rd, rs1, rs2),
            6 => asm::slt(rd, rs1, rs2),
            7 => asm::sltu(rd, rs1, rs2),
            8 => asm::slli(rd, rs1, rng.gen_range(0..31)),
            9 => asm::srli(rd, rs1, rng.gen_range(0..31)),
            10 => asm::srai(rd, rs1, rng.gen_range(0..31)),
            11 => {
                // aligned store within dmem
                let offset = rng.gen_range(0..DMEM_WORDS as i32 / 2) * 4;
                asm::sw(rs2, 0, offset)
            }
            12 => {
                let offset = rng.gen_range(0..DMEM_WORDS as i32 / 2) * 4;
                asm::lw(rd, 0, offset)
            }
            _ => {
                // short forward branch (skips at most 2 instructions,
                // always lands inside the program — the furthest legal
                // target is the trailing ecall at index `len`)
                let skip = rng.gen_range(1..=2).min((len - 1 - i) as i32);
                let offset = (skip + 1) * 4;
                match rng.gen_range(0..4) {
                    0 => asm::beq(rs1, rs2, offset),
                    1 => asm::bne(rs1, rs2, offset),
                    2 => asm::blt(rs1, rs2, offset),
                    _ => asm::bgeu(rs1, rs2, offset),
                }
            }
        };
        text.push(insn);
    }
    text.push(asm::ecall());
    text
}

#[test]
fn random_programs_match_the_golden_model() {
    let low = passes::lower(riscv_mini_with(256)).unwrap();
    let mut rng = StdRng::seed_from_u64(0xdead);
    for round in 0..25 {
        let text = random_program(&mut rng, 30);
        // golden model
        let mut iss = Iss::new(&text, DMEM_WORDS);
        iss.run(100);
        assert!(iss.halted, "round {round}: ISS did not halt");
        // RTL core
        let mut sim = CompiledSim::new(&low).unwrap();
        Program::new(text.clone())
            .load(&mut sim, "icache.mem", "dcache.mem")
            .unwrap();
        sim.reset(2);
        for _ in 0..4000 {
            if sim.peek("halted") == 1 {
                break;
            }
            sim.step();
        }
        assert_eq!(sim.peek("halted"), 1, "round {round}: RTL did not halt");
        // architectural state comparison
        for r in 1..8u64 {
            assert_eq!(
                sim.read_mem("core.rf", r).unwrap() as u32,
                iss.regs[r as usize],
                "round {round}: x{r} mismatch"
            );
        }
        for w in 0..DMEM_WORDS as u64 / 2 {
            assert_eq!(
                sim.read_mem("dcache.mem", w).unwrap() as u32,
                iss.dmem[w as usize],
                "round {round}: dmem[{w}] mismatch"
            );
        }
        assert_eq!(
            sim.peek("retired"),
            iss.retired,
            "round {round}: retired mismatch"
        );
    }
}

#[test]
fn differential_across_backends() {
    // the interpreter must agree with the compiled backend on the same
    // random program (transitively validating against the ISS)
    use rtlcov::sim::interp::InterpSim;
    let low = passes::lower(riscv_mini_with(256)).unwrap();
    let mut rng = StdRng::seed_from_u64(0xbeef);
    let text = random_program(&mut rng, 25);
    let run = |sim: &mut dyn Simulator| -> Vec<u64> {
        Program::new(text.clone())
            .load(sim, "icache.mem", "dcache.mem")
            .unwrap();
        sim.reset(2);
        for _ in 0..4000 {
            if sim.peek("halted") == 1 {
                break;
            }
            sim.step();
        }
        (0..8)
            .map(|r| sim.read_mem("core.rf", r).unwrap())
            .collect()
    };
    let mut compiled = CompiledSim::new(&low).unwrap();
    let mut interp = InterpSim::new(&low).unwrap();
    assert_eq!(run(&mut compiled), run(&mut interp));
}

//! End-to-end campaign smoke test: a two-design, three-backend campaign
//! must produce exactly the union of the coverage each backend produces
//! on its own, the parallel schedule must be bit-identical to the
//! sequential one, and the saturation scheduler must actually cancel
//! redundant work.

use rtlcov::campaign::runner::{run_campaign, CampaignConfig};
use rtlcov::campaign::{job_list, Backend, JobOutcome};
use rtlcov::core::instrument::{CoverageCompiler, Metrics};
use rtlcov::core::CoverageMap;
use rtlcov::designs::workloads::campaign_workload;
use rtlcov::sim::SimKind;

const DESIGNS: [&str; 2] = ["gcd", "queue"];
const BACKENDS: [Backend; 3] = [
    Backend::Sim(SimKind::Interp),
    Backend::Sim(SimKind::Compiled),
    Backend::Sim(SimKind::Essent),
];

fn config(workers: usize) -> CampaignConfig {
    CampaignConfig {
        designs: DESIGNS.iter().map(|s| s.to_string()).collect(),
        backends: BACKENDS.to_vec(),
        metrics: Metrics::all(),
        shards: 2,
        scale: 1,
        workers,
        plateau: 0,
        shard_dir: None,
        ..CampaignConfig::default()
    }
}

/// Run the same job list with no scheduler at all: one thread, one job at
/// a time, folding maps left to right.
fn sequential_reference() -> CoverageMap {
    let cfg = config(1);
    let mut merged = CoverageMap::new();
    for design in DESIGNS {
        let workload = campaign_workload(design, 0, 1).unwrap();
        let inst = CoverageCompiler::new(cfg.metrics)
            .run(workload.circuit)
            .unwrap();
        for job in job_list(&cfg).iter().filter(|j| j.design == design) {
            let Backend::Sim(kind) = job.backend else {
                unreachable!("software-only")
            };
            let mut sim = kind.build(&inst.circuit).unwrap();
            let map = campaign_workload(design, job.shard, cfg.scale)
                .unwrap()
                .run(&mut *sim);
            for (name, count) in map.iter() {
                let key = format!("{design}::{name}");
                merged.declare(key.clone());
                merged.record(key, count);
            }
        }
    }
    merged
}

#[test]
fn parallel_campaign_is_bit_identical_to_sequential() {
    let reference = sequential_reference();
    let single = run_campaign(&config(1)).unwrap();
    let parallel = run_campaign(&config(4)).unwrap();
    assert_eq!(single.completed(), job_list(&config(1)).len());
    assert_eq!(parallel.completed(), single.completed());
    // the acceptance criterion: >= 4 workers, bit-identical merge
    assert_eq!(single.merged, reference);
    assert_eq!(parallel.merged, reference);
}

#[test]
fn merged_map_is_union_of_per_backend_maps() {
    let campaign = run_campaign(&config(4)).unwrap();
    for design in DESIGNS {
        // per-backend maps produced sequentially outside the scheduler
        let workload = campaign_workload(design, 0, 1).unwrap();
        let inst = CoverageCompiler::new(Metrics::all())
            .run(workload.circuit)
            .unwrap();
        let mut per_backend: Vec<CoverageMap> = Vec::new();
        for backend in BACKENDS {
            let Backend::Sim(kind) = backend else {
                unreachable!("software-only")
            };
            for shard in 0..2 {
                let mut sim = kind.build(&inst.circuit).unwrap();
                per_backend.push(campaign_workload(design, shard, 1).unwrap().run(&mut *sim));
            }
        }
        let refs: Vec<&CoverageMap> = per_backend.iter().collect();
        let union = CoverageMap::merge_many(&refs);
        assert_eq!(campaign.per_design[design], union, "design {design}");
    }
}

#[test]
fn saturation_scheduler_cancels_redundant_jobs() {
    // gcd saturates its cover points within the first shards; with many
    // shards, a single worker (deterministic order), and a plateau of 2,
    // the tail of the job list must be cancelled, not run
    // line coverage saturates on the first shard for both designs, so
    // the no-coverage-loss check below is exact
    let cfg = CampaignConfig {
        shards: 10,
        workers: 1,
        plateau: 2,
        metrics: Metrics::line_only(),
        ..config(1)
    };
    let result = run_campaign(&cfg).unwrap();
    let cancelled = result.cancelled();
    assert!(
        cancelled >= 1,
        "no job was cancelled: {:?}",
        result.outcomes
    );
    // cancellation must not cost coverage: every point the full run hits
    // is already hit before the plateau triggers
    let full = run_campaign(&CampaignConfig {
        plateau: 0,
        ..cfg.clone()
    })
    .unwrap();
    for (key, count) in full.merged.iter() {
        if count > 0 {
            assert!(
                result.merged.count(key).unwrap_or(0) > 0,
                "cancelled campaign lost cover point {key}"
            );
        }
    }
    // and cancelled jobs really are design-tail jobs
    for (job, outcome) in &result.outcomes {
        if matches!(outcome, JobOutcome::Cancelled) {
            assert!(
                job.shard > 0,
                "shard 0 should never be cancelled first: {job}"
            );
        }
    }
}

//! Edge-case coverage maps through every report generator.
//!
//! The reports join instrumentation metadata with whatever map a backend
//! (or a merge of backends) produced, so they must behave on the
//! degenerate maps real campaigns hand them: a map from a backend that
//! never ran (empty), a run that covered nothing (all zero), and a
//! long-lived merged map whose counts have saturated at `u64::MAX`.

use rtlcov::core::instrument::{CoverageCompiler, Instrumented, Metrics};
use rtlcov::core::report::{
    fsm::FsmReport, line::LineReport, ready_valid::ReadyValidReport, toggle::ToggleReport,
};
use rtlcov::core::CoverageMap;
use rtlcov::designs::workloads::{campaign_design_names, campaign_workload};
use rtlcov::sim::SimKind;

/// Instrument a campaign design with every metric and collect the full
/// declared cover-point set by running its shard-0 workload.
fn instrumented_with_counts(design: &str) -> (Instrumented, CoverageMap) {
    let workload = campaign_workload(design, 0, 1).expect("known design");
    let inst = CoverageCompiler::new(Metrics::all())
        .run(workload.circuit.clone())
        .expect("instrumentation succeeds");
    let mut sim = SimKind::Interp
        .build(&inst.circuit)
        .expect("interpreter builds");
    let counts = workload.run(&mut *sim);
    (inst, counts)
}

struct Summaries {
    line: rtlcov::core::report::Summary,
    toggle: rtlcov::core::report::Summary,
    fsm: rtlcov::core::report::Summary,
    ready_valid: rtlcov::core::report::Summary,
}

/// Build and render all four reports; rendering must never panic, and
/// every render must carry its header line.
fn all_reports(inst: &Instrumented, counts: &CoverageMap) -> Summaries {
    let line = LineReport::build(&inst.circuit, &inst.artifacts.line, counts);
    let toggle = ToggleReport::build(&inst.circuit, &inst.artifacts.toggle, counts);
    let fsm = FsmReport::build(&inst.circuit, &inst.artifacts.fsm, counts);
    let rv = ReadyValidReport::build(&inst.circuit, &inst.artifacts.ready_valid, counts);
    for render in [line.render(), toggle.render(), fsm.render(), rv.render()] {
        assert!(!render.is_empty());
        assert!(render.contains('%'), "no summary percentage: {render}");
    }
    Summaries {
        line: line.summary,
        toggle: toggle.summary,
        fsm: fsm.summary,
        ready_valid: rv.summary,
    }
}

fn with_counts(base: &CoverageMap, value: u64) -> CoverageMap {
    base.iter().map(|(n, _)| (n.to_string(), value)).collect()
}

#[test]
fn empty_map_reports_declared_totals_with_zero_covered() {
    for design in campaign_design_names() {
        let (inst, real) = instrumented_with_counts(design);
        let empty = all_reports(&inst, &CoverageMap::new());
        // totals come from the instrumentation artifacts, not the map, so
        // an empty map must report the same universe as a real run
        let reference = all_reports(&inst, &real);
        assert_eq!(empty.line.total, reference.line.total, "{design}");
        assert_eq!(empty.toggle.total, reference.toggle.total, "{design}");
        assert_eq!(empty.fsm.total, reference.fsm.total, "{design}");
        assert_eq!(
            empty.ready_valid.total, reference.ready_valid.total,
            "{design}"
        );
        for s in [empty.line, empty.toggle, empty.fsm, empty.ready_valid] {
            assert_eq!(s.covered, 0, "{design}: empty map covers nothing");
        }
        assert!(empty.line.total > 0, "{design}: line metric always applies");
    }
}

#[test]
fn all_zero_map_matches_empty_map() {
    for design in campaign_design_names() {
        let (inst, real) = instrumented_with_counts(design);
        let zeroed = all_reports(&inst, &with_counts(&real, 0));
        let empty = all_reports(&inst, &CoverageMap::new());
        for (z, e) in [
            (zeroed.line, empty.line),
            (zeroed.toggle, empty.toggle),
            (zeroed.fsm, empty.fsm),
            (zeroed.ready_valid, empty.ready_valid),
        ] {
            assert_eq!(z, e, "{design}: declared-at-zero == undeclared");
        }
    }
}

#[test]
fn saturated_merged_map_reports_full_coverage() {
    for design in campaign_design_names() {
        let (inst, real) = instrumented_with_counts(design);
        // a long campaign's merged map: every point at u64::MAX, merged
        // once more with itself — counts must stay saturated, not wrap
        let saturated = with_counts(&real, u64::MAX);
        let mut merged = saturated.clone();
        merged.merge(&saturated);
        for (name, count) in merged.iter() {
            assert_eq!(count, u64::MAX, "{design}: {name} wrapped");
        }
        let s = all_reports(&inst, &merged);
        for s in [s.line, s.toggle, s.fsm, s.ready_valid] {
            assert_eq!(
                s.covered, s.total,
                "{design}: every declared point saturated"
            );
            assert_eq!(s.percent(), "100.0%", "{design}");
        }
    }
}

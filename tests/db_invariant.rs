//! The database's end-to-end invariant: a query over ingested campaign
//! runs is **bit-identical** to merging the raw shard maps directly with
//! `CoverageMap::merge` — the database adds durability, interning, and
//! memoization, never a different answer. The invariant must survive a
//! crash mid-ingest (the partial segment stays invisible) and incremental
//! ingest served from the memoized merge cache.

use rtlcov::campaign::runner::{run_campaign, CampaignConfig};
use rtlcov::campaign::{Backend, ShardFormat, ShardStore};
use rtlcov::core::instrument::Metrics;
use rtlcov::core::CoverageMap;
use rtlcov::db::{CoverageDb, RunKey, Selector};
use rtlcov::sim::SimKind;
use std::fs;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtlcov-dbinv-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The reference result: fold the raw shard files of one design with the
/// paper's plain §5.3 merge, no database involved.
fn direct_merge(shard_dir: &PathBuf, design: &str) -> CoverageMap {
    let (shards, rejected) = ShardStore::new(shard_dir, ShardFormat::Binary).scan();
    assert!(rejected.is_empty(), "campaign persisted a bad shard");
    let mut merged = CoverageMap::new();
    for shard in shards.iter().filter(|s| s.job.design == design) {
        merged.merge(&shard.map);
    }
    merged
}

#[test]
fn db_query_is_bit_identical_to_direct_shard_merge() {
    let dir = scratch("query");
    let shard_dir = dir.join("shards");
    let db_dir = dir.join("db");
    let config = CampaignConfig {
        designs: vec!["gcd".into(), "queue".into()],
        backends: vec![Backend::Sim(SimKind::Interp), Backend::Sim(SimKind::Essent)],
        metrics: Metrics::all(),
        shards: 2,
        workers: 2,
        shard_dir: Some(shard_dir.clone()),
        db_dir: Some(db_dir.clone()),
        db_label: "invariant".into(),
        ..CampaignConfig::default()
    };
    let result = run_campaign(&config).expect("campaign runs");
    assert!(result.healthy());

    let db = CoverageDb::open(&db_dir).expect("open db");
    assert_eq!(db.runs().len(), 8, "2 designs x 2 shards x 2 backends");
    for design in ["gcd", "queue"] {
        let selector = Selector::parse(&format!("design={design}")).unwrap();
        let from_db = db.merged(&selector).expect("db merge");
        let reference = direct_merge(&shard_dir, design);
        assert_eq!(*from_db, reference, "{design}: db diverged from raw merge");
        // and both equal the campaign's own live merge
        assert_eq!(*from_db, result.per_design[design], "{design}");
    }

    // -- crash mid-ingest: a segment written but never committed, plus a
    //    torn name-table append, must not change any answer
    let before = (*db.merged(&Selector::all()).unwrap()).clone();
    fs::write(db_dir.join("seg-999.rseg"), b"RSEGtorn mid write").unwrap();
    {
        use std::io::Write;
        let mut names = fs::OpenOptions::new()
            .append(true)
            .open(db_dir.join("names.tbl"))
            .unwrap();
        names.write_all(b"\x0c\x00\x00\x00half a na").unwrap();
    }
    let crashed = CoverageDb::open(&db_dir).expect("reopen after crash");
    assert_eq!(crashed.runs().len(), 8, "partial segment is invisible");
    assert_eq!(*crashed.merged(&Selector::all()).unwrap(), before);
    let removed = crashed.gc().expect("gc");
    assert_eq!(removed, vec![db_dir.join("seg-999.rseg")]);

    // -- the database still ingests and queries correctly after the crash
    //    (the torn name append is healed by the next commit)
    let mut healed = CoverageDb::open(&db_dir).expect("reopen after gc");
    let mut extra = CoverageMap::new();
    extra.record("post_crash.cover", 5);
    healed
        .ingest(
            &RunKey {
                design: "gcd".into(),
                workload: "s9".into(),
                backend: "interp".into(),
                label: "invariant".into(),
            },
            &extra,
        )
        .expect("ingest after crash");
    let grown = healed
        .merged(&Selector::parse("design=gcd").unwrap())
        .unwrap();
    let mut reference = direct_merge(&shard_dir, "gcd");
    reference.merge(&extra);
    assert_eq!(*grown, reference);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn incremental_ingest_hits_the_memoized_merge_cache() {
    let dir = scratch("memo");
    let mut db = CoverageDb::open(&dir).expect("open");
    let runs = 16u64;
    let mut reference = CoverageMap::new();
    for i in 0..runs {
        let mut map = CoverageMap::new();
        map.record("shared.cover", i + 1);
        map.record(format!("run{i}.cover"), 1);
        reference.merge(&map);
        db.ingest(
            &RunKey {
                design: "synthetic".into(),
                workload: format!("s{i}"),
                backend: "interp".into(),
                label: "memo".into(),
            },
            &map,
        )
        .expect("ingest");
    }
    let all = Selector::all();
    assert_eq!(*db.merged(&all).unwrap(), reference);
    let (_, cold_misses) = db.memo_stats();

    // repeat: answered from the root cache node, zero new merges
    assert_eq!(*db.merged(&all).unwrap(), reference);
    let (hits, misses) = db.memo_stats();
    assert_eq!(misses, cold_misses, "repeat query merged nothing");
    assert!(hits >= 1);

    // grow by one: only the right spine re-merges, and the answer still
    // matches the direct fold
    let mut extra = CoverageMap::new();
    extra.record("shared.cover", 100);
    extra.record("late.cover", 1);
    reference.merge(&extra);
    db.ingest(
        &RunKey {
            design: "synthetic".into(),
            workload: "s16".into(),
            backend: "interp".into(),
            label: "memo".into(),
        },
        &extra,
    )
    .expect("incremental ingest");
    assert_eq!(*db.merged(&all).unwrap(), reference);
    let (_, grown_misses) = db.memo_stats();
    assert!(
        grown_misses - cold_misses <= 6,
        "expected O(log {runs}) new merges, got {}",
        grown_misses - cold_misses
    );
    fs::remove_dir_all(&dir).unwrap();
}

//! End-to-end pipeline test: every metric on riscv-mini, every report
//! generator, coverage merging, removal, and Verilog emission.

use rtlcov::core::instrument::{CoverageCompiler, Metrics};
use rtlcov::core::passes::remove::remove_covered;
use rtlcov::core::report::{
    fsm::FsmReport, line::LineReport, ready_valid::ReadyValidReport, toggle::ToggleReport,
};
use rtlcov::core::CoverageMap;
use rtlcov::designs::programs::isa_suite;
use rtlcov::designs::riscv_mini::riscv_mini_with;
use rtlcov::sim::{compiled::CompiledSim, Simulator};

fn run_suite(circuit: &rtlcov::firrtl::Circuit) -> CoverageMap {
    let mut merged = CoverageMap::new();
    for (_, program) in isa_suite() {
        let mut sim = CompiledSim::new(circuit).unwrap();
        program.load(&mut sim, "icache.mem", "dcache.mem").unwrap();
        sim.reset(2);
        sim.step_n(1500);
        merged.merge(&sim.cover_counts());
    }
    merged
}

#[test]
fn all_reports_render_from_one_run() {
    let inst = CoverageCompiler::new(Metrics::all())
        .run(riscv_mini_with(256))
        .unwrap();
    let counts = run_suite(&inst.circuit);

    let line = LineReport::build(&inst.circuit, &inst.artifacts.line, &counts);
    assert!(line.summary.total > 20, "line total {}", line.summary.total);
    assert!(line.summary.covered > 0);
    assert!(line.render().contains("line coverage"));

    let toggle = ToggleReport::build(&inst.circuit, &inst.artifacts.toggle, &counts);
    assert!(
        toggle.summary.total > 200,
        "toggle total {}",
        toggle.summary.total
    );
    assert!(toggle.summary.covered > 0);
    assert!(
        !toggle.stuck_signals().is_empty(),
        "some bits should be stuck"
    );

    let fsm = FsmReport::build(&inst.circuit, &inst.artifacts.fsm, &counts);
    // core FSM + two cache FSM instances
    assert!(fsm.fsms.len() >= 3, "fsm instances {}", fsm.fsms.len());
    assert!(fsm.summary.covered > 0);
    // the icache never visits its Write state
    let icache = fsm.fsms.iter().find(|f| f.reg == "icache.state").unwrap();
    assert!(icache.unvisited_states().contains(&"Write"));
    let dcache = fsm.fsms.iter().find(|f| f.reg == "dcache.state").unwrap();
    assert!(!dcache.unvisited_states().contains(&"Write"));

    let rv = ReadyValidReport::build(&inst.circuit, &inst.artifacts.ready_valid, &counts);
    // core + 2 cache instances × (req, resp) = at least 6 interfaces
    assert!(rv.summary.total >= 6, "rv interfaces {}", rv.summary.total);
    assert!(rv.summary.covered > 0);
}

#[test]
fn removal_then_rerun_covers_nothing_removed() {
    let inst = CoverageCompiler::new(Metrics::line_only())
        .run(riscv_mini_with(256))
        .unwrap();
    let counts = run_suite(&inst.circuit);
    let mut reduced = inst.circuit.clone();
    let stats = remove_covered(&mut reduced, &counts, 10);
    assert!(stats.after < stats.before);
    // the reduced circuit still simulates, and only reports the kept covers
    let reduced_counts = run_suite(&reduced);
    assert!(reduced_counts.len() < counts.len());
    for (name, _) in reduced_counts.iter() {
        assert!(counts.count(name).is_some(), "{name} existed before");
    }
}

#[test]
fn split_edge_toggle_counts_sum_to_any_edge() {
    use rtlcov::core::passes::toggle::{instrument_toggle_coverage, ToggleOptions};
    let src = "
circuit T :
  module T :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output o : UInt<2>
    reg r : UInt<2>, clock with : (reset => (reset, UInt<2>(0)))
    when en :
      r <= tail(add(r, UInt<2>(1)), 1)
    o <= r
";
    let lowered =
        || rtlcov::firrtl::passes::lower(rtlcov::firrtl::parser::parse(src).unwrap()).unwrap();
    let run = |circuit: &rtlcov::firrtl::Circuit| {
        let mut sim = CompiledSim::new(circuit).unwrap();
        sim.reset(1);
        sim.poke("en", 1);
        sim.step_n(9);
        sim.cover_counts()
    };
    let mut split = lowered();
    instrument_toggle_coverage(&mut split, ToggleOptions::regs_only().with_split_edges()).unwrap();
    let split_counts = run(&split);
    let mut single = lowered();
    instrument_toggle_coverage(&mut single, ToggleOptions::regs_only()).unwrap();
    let single_counts = run(&single);
    for bit in 0..2 {
        let rises = split_counts.count(&format!("tr_r_{bit}")).unwrap();
        let falls = split_counts.count(&format!("tf_r_{bit}")).unwrap();
        assert!(rises > 0 && falls > 0, "bit {bit}");
        assert!(
            rises.abs_diff(falls) <= 1,
            "bit {bit}: rises {rises} falls {falls}"
        );
        assert_eq!(
            single_counts.count(&format!("t_r_{bit}")).unwrap(),
            rises + falls,
            "bit {bit}: split edges must sum to the any-edge count"
        );
    }
}

#[test]
fn verilog_emission_carries_covers() {
    let inst = CoverageCompiler::new(Metrics::line_only())
        .run(riscv_mini_with(64))
        .unwrap();
    let verilog = rtlcov::firrtl::verilog::emit_verilog(&inst.circuit);
    // covers become immediate assertions (the Verilator/SymbiYosys form)
    assert!(
        verilog.contains(": cover ("),
        "{}",
        &verilog[..500.min(verilog.len())]
    );
    assert!(verilog.contains("module Cache("));
    assert!(verilog.contains("module Core("));
}

#[test]
fn coverage_map_json_roundtrip_across_process_boundary() {
    let inst = CoverageCompiler::new(Metrics::line_only())
        .run(riscv_mini_with(256))
        .unwrap();
    let counts = run_suite(&inst.circuit);
    // the interchange format survives serialization (how real backends in
    // separate processes would hand results to the report generator)
    let json = counts.to_json();
    let back = CoverageMap::from_json(&json).unwrap();
    assert_eq!(counts, back);
    let report = LineReport::build(&inst.circuit, &inst.artifacts.line, &back);
    assert!(report.summary.covered > 0);
}

//! Three-way differential testing of expression semantics: randomly
//! generated well-typed expressions are evaluated by (1) the pure
//! evaluator, (2) the compiled simulator, and (3) the formal backend's
//! bit-blaster, and all three must agree bit-for-bit. This pins the FIRRTL
//! width/signedness rules across every engine in the repository.

use proptest::prelude::*;
use rtlcov::firrtl::bv::Bv;
use rtlcov::firrtl::eval::{eval, Value};
use rtlcov::firrtl::ir::{Circuit, Expr, Module, Port, PrimOp, Type};
use rtlcov::firrtl::typecheck::{expr_type, TypeEnv};
use rtlcov::formal::encode::{encode_expr, Encoder};
use rtlcov::formal::sat::SatResult;
use rtlcov::sim::compiled::CompiledSim;
use rtlcov::sim::Simulator;
use std::collections::HashMap;

const INPUTS: [(&str, u32, bool); 3] = [("a", 9, false), ("b", 16, false), ("c", 5, true)];

fn env() -> TypeEnv {
    INPUTS
        .iter()
        .map(|(n, w, s)| {
            (
                n.to_string(),
                if *s { Type::sint(*w) } else { Type::uint(*w) },
            )
        })
        .collect()
}

/// Build a random expression from a byte script, clamping widths so the
/// compiled backend's 64-bit fast path always applies.
fn build_expr(script: &[u8], pos: &mut usize, depth: u32) -> Expr {
    let env = env();
    let mut next = |max: u8| -> u8 {
        let b = script.get(*pos).copied().unwrap_or(0);
        *pos += 1;
        b % max
    };
    let leaf = |k: u8| -> Expr {
        match k % 5 {
            0 => Expr::r("a"),
            1 => Expr::r("b"),
            2 => Expr::r("c"),
            3 => Expr::u(u64::from(k).wrapping_mul(37) % 200, 8),
            _ => Expr::SIntLit(Bv::from_i64(i64::from(k as i8), 7)),
        }
    };
    if depth == 0 {
        return leaf(next(255));
    }
    let clamp = |e: Expr| -> Expr {
        // keep widths ≤ 24 bits so nested products stay under 64
        match expr_type(&e, &env) {
            Ok(t) if t.width().unwrap_or(1) > 24 => {
                let w = t.width().unwrap_or(25);
                Expr::prim(PrimOp::Tail, vec![e], vec![u64::from(w - 16)])
            }
            _ => e,
        }
    };
    let op = next(20);
    let a = clamp(build_expr(script, pos, depth - 1));
    match op {
        0..=11 => {
            let b = clamp(build_expr(script, pos, depth - 1));
            let prim = [
                PrimOp::Add,
                PrimOp::Sub,
                PrimOp::Mul,
                PrimOp::And,
                PrimOp::Or,
                PrimOp::Xor,
                PrimOp::Cat,
                PrimOp::Lt,
                PrimOp::Leq,
                PrimOp::Gt,
                PrimOp::Eq,
                PrimOp::Neq,
            ][op as usize];
            Expr::prim(prim, vec![a, b], vec![])
        }
        12 => Expr::prim(PrimOp::Not, vec![a], vec![]),
        13 => Expr::prim(PrimOp::Orr, vec![a], vec![]),
        14 => Expr::prim(PrimOp::Andr, vec![a], vec![]),
        15 => Expr::prim(PrimOp::Xorr, vec![a], vec![]),
        16 => {
            let w = expr_type(&a, &env)
                .ok()
                .and_then(|t| t.width())
                .unwrap_or(1);
            let hi = u64::from((w - 1).min(12));
            Expr::prim(PrimOp::Bits, vec![a], vec![hi, 0])
        }
        17 => Expr::prim(PrimOp::Pad, vec![a], vec![20]),
        18 => {
            let b = clamp(build_expr(script, pos, depth - 1));
            let cond = Expr::prim(PrimOp::Orr, vec![b.clone()], vec![]);
            Expr::mux(cond, a, b)
        }
        _ => Expr::prim(PrimOp::Shr, vec![a], vec![3]),
    }
}

fn circuit_for(expr: &Expr, out_width: u32) -> Circuit {
    use rtlcov::firrtl::ir::{Direction, Info, Stmt};
    let mut m = Module::new("T");
    for (n, w, s) in INPUTS {
        m.ports.push(Port {
            name: n.to_string(),
            dir: Direction::Input,
            ty: if s { Type::sint(w) } else { Type::uint(w) },
            info: Info::none(),
        });
    }
    m.ports.push(Port {
        name: "o".into(),
        dir: Direction::Output,
        ty: Type::uint(out_width),
        info: Info::none(),
    });
    m.body.push(Stmt::Connect {
        loc: Expr::r("o"),
        value: Expr::prim(PrimOp::AsUInt, vec![expr.clone()], vec![]),
        info: Info::none(),
    });
    Circuit::new(m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn eval_compiled_and_sat_agree(
        script in prop::collection::vec(any::<u8>(), 24..64),
        av in any::<u64>(),
        bv in any::<u64>(),
        cv in any::<u64>(),
    ) {
        let mut pos = 0;
        let expr = build_expr(&script, &mut pos, 3);
        let ty = expr_type(&expr, &env()).unwrap();
        let out_width = ty.width().unwrap();
        prop_assume!(out_width <= 64);

        let values: Vec<(String, Value)> = INPUTS
            .iter()
            .zip([av, bv, cv])
            .map(|((n, w, s), v)| {
                let bits = Bv::from_u64(v, *w);
                (n.to_string(), Value { bits, signed: *s })
            })
            .collect();

        // oracle 1: pure evaluator
        let lookup = |name: &str| values.iter().find(|(n, _)| n == name).map(|(_, v)| v.clone());
        let expected = eval(&expr, &lookup).unwrap();
        let expected_bits = expected.bits.resize_zext(out_width);

        // oracle 2: compiled simulator
        let circuit = circuit_for(&expr, out_width);
        let low = rtlcov::firrtl::passes::lower(circuit).unwrap();
        let mut sim = CompiledSim::new(&low).unwrap();
        for ((n, _, _), v) in INPUTS.iter().zip([av, bv, cv]) {
            sim.poke(n, v);
        }
        prop_assert_eq!(
            sim.peek("o"),
            expected_bits.to_u64(),
            "compiled vs eval for {:?}",
            &expr
        );

        // oracle 3: formal bit-blaster (skip ops it does not support)
        let mut enc = Encoder::new();
        let mut word_env = HashMap::new();
        for ((n, w, s), v) in INPUTS.iter().zip([av, bv, cv]) {
            let word = enc.const_word(Bv::from_u64(v, *w).to_u64(), *w);
            word_env.insert(n.to_string(), (word, *s));
        }
        if let Ok((word, _)) = encode_expr(&mut enc, &expr, &word_env) {
            prop_assert_eq!(enc.solver.solve(), SatResult::Sat);
            let sized = enc.extend_pub(&word, out_width, ty.is_signed());
            prop_assert_eq!(
                enc.word_value(&sized),
                expected_bits.to_u64(),
                "sat vs eval for {:?}",
                &expr
            );
        }
    }
}

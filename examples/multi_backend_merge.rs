//! Multi-backend coverage merging — the paper's headline capability.
//!
//! The same instrumented riscv-mini circuit runs on four backends: the
//! tree-walking interpreter (Treadle analog), the compiled simulator
//! (Verilator analog), the activity-driven simulator (ESSENT analog), and
//! the emulated FPGA host with coverage scan chains (FireSim analog).
//! Each backend runs a *different* test program; because every backend
//! reports the identical `name → count` format, the maps merge trivially
//! and the report generator never knows which backend produced what.
//!
//! ```sh
//! cargo run --release --example multi_backend_merge
//! ```

use rtlcov::core::instrument::{CoverageCompiler, Metrics};
use rtlcov::core::report::line::LineReport;
use rtlcov::core::CoverageMap;
use rtlcov::designs::programs::isa_suite;
use rtlcov::designs::riscv_mini::riscv_mini;
use rtlcov::fpga::{insert_scan_chain, FpgaHost};
use rtlcov::sim::{compiled::CompiledSim, essent::EssentSim, interp::InterpSim, Simulator};

fn run_software(
    sim: &mut dyn Simulator,
    program: &rtlcov::designs::programs::Program,
    cycles: usize,
) -> CoverageMap {
    program
        .load(sim, "icache.mem", "dcache.mem")
        .expect("program fits");
    sim.reset(2);
    for _ in 0..cycles {
        if sim.peek("halted") == 1 {
            break;
        }
        sim.step();
    }
    sim.cover_counts()
}

fn main() {
    let instrumented = CoverageCompiler::new(Metrics::line_only())
        .run(riscv_mini())
        .expect("riscv-mini lowers");
    let circuit = &instrumented.circuit;
    let suite = isa_suite();

    let mut merged = CoverageMap::new();

    // backend 1: compiled simulator runs the arithmetic test
    let mut compiled = CompiledSim::new(circuit).expect("compiles");
    let m = run_software(&mut compiled, &suite[0].1, 3000);
    println!(
        "compiled   ran `{}`: {}/{} covers",
        suite[0].0,
        m.covered(),
        m.len()
    );
    merged.merge(&m);

    // backend 2: interpreter runs the memory test
    let mut interp = InterpSim::new(circuit).expect("interprets");
    let m = run_software(&mut interp, &suite[4].1, 3000);
    println!(
        "interp     ran `{}`: {}/{} covers",
        suite[4].0,
        m.covered(),
        m.len()
    );
    merged.merge(&m);

    // backend 3: activity-driven simulator runs the branch test
    let mut essent = EssentSim::new(circuit).expect("compiles");
    let m = run_software(&mut essent, &suite[3].1, 5000);
    println!(
        "essent     ran `{}`: {}/{} covers",
        suite[3].0,
        m.covered(),
        m.len()
    );
    merged.merge(&m);

    // backend 4: the FPGA host (scan-chain counters) runs the jump test
    let mut fpga_circuit = circuit.clone();
    let info = insert_scan_chain(&mut fpga_circuit, 16).expect("scan chain");
    let mut host = FpgaHost::new(&fpga_circuit, info).expect("host builds");
    for (addr, word) in suite[5].1.text.iter().enumerate() {
        host.write_mem("icache.mem", addr as u64, *word as u64)
            .expect("fits");
    }
    host.reset(2);
    host.run(3000);
    let (m, scan_time) = host.scan_out_counts();
    println!(
        "fpga       ran `{}`: {}/{} covers (scan-out {:.1} ms)",
        suite[5].0,
        m.covered(),
        m.len(),
        scan_time.as_secs_f64() * 1e3
    );
    merged.merge(&m);

    println!("\nmerged: {}/{} covers\n", merged.covered(), merged.len());
    let report = LineReport::build(circuit, &instrumented.artifacts.line, &merged);
    println!("{}", report.render());
    println!("lines never hit by any backend: {:?}", report.uncovered());
}

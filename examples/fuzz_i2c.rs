//! Coverage-guided fuzzing of the I2C peripheral (§5.4).
//!
//! Any instrumented metric can act as fuzzing feedback; here line coverage
//! guides an AFL-style mutation loop against the I2C slave and the
//! cumulative coverage curve is printed alongside a random baseline.
//!
//! ```sh
//! cargo run --release --example fuzz_i2c
//! ```

use rtlcov::core::instrument::{CoverageCompiler, Metrics};
use rtlcov::designs::i2c::i2c;
use rtlcov::fuzz::{Feedback, FuzzHarness, Fuzzer};

fn main() {
    let iterations: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8000);
    let instrumented = CoverageCompiler::new(Metrics::line_only())
        .run(i2c())
        .expect("i2c lowers");
    println!(
        "fuzzing the I2C slave: {} line covers, {iterations} executions\n",
        instrumented.artifacts.line.cover_count()
    );

    let mut guided = Fuzzer::new(
        FuzzHarness::new(&instrumented.circuit, 256).expect("harness"),
        Feedback::InstrumentedCovers,
        2024,
    );
    let mut random = Fuzzer::new(
        FuzzHarness::new(&instrumented.circuit, 256).expect("harness"),
        Feedback::Random,
        2024,
    );

    println!(
        "{:>10}  {:>16}  {:>16}",
        "execs", "guided covered", "random covered"
    );
    let chunk = iterations / 10;
    for i in 0..10 {
        guided.run(chunk);
        random.run(chunk);
        println!(
            "{:>10}  {:>13}/{:<2}  {:>13}/{:<2}",
            (i + 1) * chunk,
            guided.cumulative().covered(),
            guided.cumulative().len(),
            random.cumulative().covered(),
            random.cumulative().len(),
        );
    }
    println!(
        "\nguided corpus grew to {} inputs; random keeps none",
        guided.corpus_len()
    );
}

//! Quickstart: instrument a GCD circuit with line coverage, simulate it,
//! and print the line coverage report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rtlcov::core::instrument::{CoverageCompiler, Metrics};
use rtlcov::core::report::line::LineReport;
use rtlcov::designs::gcd::gcd;
use rtlcov::sim::compiled::CompiledSim;
use rtlcov::sim::Simulator;

fn main() {
    // 1. build the design (a Chisel-like builder produced this circuit,
    //    complete with source locators)
    let circuit = gcd(16);

    // 2. run the coverage compiler: line coverage is a FIRRTL pass that
    //    inserts one `cover` per branch and records the lines it dominates
    let instrumented = CoverageCompiler::new(Metrics::line_only())
        .run(circuit)
        .expect("gcd lowers cleanly");
    println!(
        "inserted {} line cover points\n",
        instrumented.artifacts.line.cover_count()
    );

    // 3. simulate: the simulator only knows about the generic cover
    //    primitive — it reports a plain name → count map
    let mut sim = CompiledSim::new(&instrumented.circuit).expect("compiles");
    sim.reset(1);
    for (a, b) in [(48u64, 32u64), (7, 3), (255, 34)] {
        sim.poke("io_a", a);
        sim.poke("io_b", b);
        sim.poke("io_load", 1);
        sim.step();
        sim.poke("io_load", 0);
        while sim.peek("io_done") == 0 {
            sim.step();
        }
        println!("gcd({a}, {b}) = {}", sim.peek("io_out"));
    }
    let counts = sim.cover_counts();
    println!("\nraw cover counts from the simulator:\n{counts}");

    // 4. the simulator-independent report generator joins the counts with
    //    the pass metadata into a line report
    let report = LineReport::build(&instrumented.circuit, &instrumented.artifacts.line, &counts);
    println!("{}", report.render());
}

//! Formal cover trace generation (§3.4 / §5.5).
//!
//! The same instrumentation that drives simulators feeds the SAT-based
//! bounded model checker: for every FSM cover point of the Figure 7 state
//! machine, the solver either synthesizes an input sequence reaching it or
//! proves it unreachable within the bound. Each witness trace is then
//! replayed on the compiled software simulator to confirm the cover fires
//! — the cross-backend consistency the single-primitive design buys.
//!
//! ```sh
//! cargo run --release --example formal_trace
//! ```

use rtlcov::core::instrument::{CoverageCompiler, Metrics};
use rtlcov::designs::fsm_examples::figure7;
use rtlcov::formal::bmc::{check_covers, BmcOptions, CoverOutcome};
use rtlcov::sim::compiled::CompiledSim;
use rtlcov::sim::elaborate::elaborate;

fn main() {
    let instrumented = CoverageCompiler::new(Metrics::fsm_only())
        .run(figure7())
        .expect("figure 7 lowers");
    let fsm = &instrumented.artifacts.fsm.fsms[0];
    println!(
        "FSM `{}` over enum `{}`: {} states, {} analyzed transitions\n",
        fsm.reg,
        fsm.enum_name,
        fsm.states.len(),
        fsm.transitions.len()
    );

    let flat = elaborate(&instrumented.circuit).expect("elaborates");
    let results = check_covers(
        &flat,
        BmcOptions {
            max_steps: 10,
            ..Default::default()
        },
    )
    .expect("bmc runs");

    for r in &results {
        match &r.outcome {
            CoverOutcome::Reached { step, trace } => {
                // replay the witness on the software simulator
                let mut sim = CompiledSim::new(&instrumented.circuit).expect("compiles");
                let counts = trace.replay(&mut sim);
                let confirmed = counts.count(&r.name).unwrap_or(0) > 0;
                let inputs: Vec<String> = trace
                    .inputs
                    .iter()
                    .map(|step| {
                        step.iter()
                            .zip(&trace.input_names)
                            .filter(|(_, n)| n.as_str() == "in")
                            .map(|(v, _)| v.to_string())
                            .collect()
                    })
                    .collect();
                println!(
                    "{:<24} reached @ step {step}  (replay {})  in = [{}]",
                    r.name,
                    if confirmed { "confirms" } else { "FAILS" },
                    inputs.join(",")
                );
            }
            CoverOutcome::UnreachableWithin(k) => {
                println!("{:<24} UNREACHABLE within {k} cycles", r.name);
            }
            CoverOutcome::Unknown => println!("{:<24} unknown (budget)", r.name),
        }
    }
    println!(
        "\nNote: the FSM analysis resolved Figure 7 exactly, so every analyzed\n\
         transition has a witness trace. Run the §5.5 harness\n\
         (`cargo run -p rtlcov-bench --bin sec55_formal`) to see the converse:\n\
         covers the analysis emits that formal verification proves unreachable."
    );
}

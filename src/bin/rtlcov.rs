//! `rtlcov` — command-line front door to the coverage system.
//!
//! ```text
//! rtlcov instrument <file.fir> [--metrics line,toggle,fsm,rv]        print instrumented FIRRTL
//! rtlcov run <file.fir> [--metrics ...] [--cycles N] [--seed S]      simulate with random inputs, print reports
//! rtlcov bmc <file.fir> [--metrics ...] [--steps K]                  formal cover reachability
//! rtlcov verilog <file.fir>                                          emit structural Verilog
//! rtlcov campaign [--designs a,b] [--backends ...] [--metrics ...]   parallel multi-backend coverage campaign
//!                 [--shards N] [--scale N] [--workers N] [--plateau K]
//!                 [--shard-dir DIR] [--format json|bin] [--bmc-steps K]
//!                 [--max-retries N] [--job-fuel N] [--fault-plan SPEC] [--keep-going]
//!                 [--db DIR] [--db-label L] [--no-sim-opt] [--no-sim-partition]
//! rtlcov db ingest --db DIR --shard-dir DIR [--label L]              commit loose campaign shards
//! rtlcov db query --db DIR [--select k=v,..]                         merged coverage for a run selection
//! rtlcov db holes --db DIR [--select k=v,..]                         never-hit cover points
//! rtlcov db diff --db DIR --a k=v,.. --b k=v,..                      compare two run selections
//! rtlcov db gc --db DIR                                              delete unreferenced files
//! rtlcov db serve --db DIR [--addr HOST:PORT] [--max-requests N]     HTTP query endpoint
//! ```
//!
//! `db` selectors are comma-separated `key=value` filters over
//! `design`, `workload`, `backend`, `label`, and `since` (logical time).
//!
//! `campaign` exits non-zero when any job ends failed, panicked, or timed
//! out — `--keep-going` downgrades that to a warning (coverage from the
//! healthy jobs is still printed either way). `--fault-plan` injects
//! reproducible faults for robustness testing, e.g.
//! `panic@gcd:0:interp=1,stall@queue:*:*,corrupt@*:1:*=2` or
//! `random@42:10`.

use rtlcov::campaign::runner::{run_campaign, CampaignConfig};
use rtlcov::campaign::{report as campaign_report, Backend, FaultPlan, ShardFormat, ShardStore};
use rtlcov::core::instrument::{CoverageCompiler, Instrumented, Metrics};
use rtlcov::core::passes::toggle::ToggleOptions;
use rtlcov::core::report::{
    fsm::FsmReport, line::LineReport, ready_valid::ReadyValidReport, toggle::ToggleReport,
};
use rtlcov::db::http::Server;
use rtlcov::db::{CoverageDb, RunKey, Selector};
use rtlcov::sim::{compiled::CompiledSim, Simulator};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rtlcov instrument <file.fir> [--metrics line,toggle,fsm,rv]\n  \
         rtlcov run <file.fir> [--metrics ...] [--cycles N] [--seed S]\n  \
         rtlcov bmc <file.fir> [--metrics ...] [--steps K]\n  \
         rtlcov verilog <file.fir>\n  \
         rtlcov campaign [--designs gcd,queue,...] [--backends interp,compiled,essent,fpga,formal]\n                  \
         [--metrics ...] [--shards N] [--scale N] [--workers N] [--plateau K]\n                  \
         [--shard-dir DIR] [--format json|bin] [--bmc-steps K]\n                  \
         [--max-retries N] [--job-fuel N] [--fault-plan SPEC] [--keep-going]\n                  \
         [--db DIR] [--db-label L] [--no-sim-opt] [--no-sim-partition]\n  \
         rtlcov db ingest --db DIR --shard-dir DIR [--label L]\n  \
         rtlcov db query|holes --db DIR [--select k=v,..]\n  \
         rtlcov db diff --db DIR --a k=v,.. --b k=v,..\n  \
         rtlcov db gc --db DIR\n  \
         rtlcov db serve --db DIR [--addr HOST:PORT] [--max-requests N]"
    );
    ExitCode::from(2)
}

fn parse_metrics(spec: &str) -> Result<Metrics, String> {
    let mut m = Metrics::none();
    for part in spec.split(',').filter(|s| !s.is_empty()) {
        match part {
            "line" => m.line = true,
            "toggle" => m.toggle = Some(ToggleOptions::default()),
            "toggle-regs" => m.toggle = Some(ToggleOptions::regs_only()),
            "fsm" => m.fsm = true,
            "rv" | "ready-valid" => m.ready_valid = true,
            "all" => m = Metrics::all(),
            other => return Err(format!("unknown metric `{other}`")),
        }
    }
    Ok(m)
}

struct Args {
    command: String,
    file: String,
    metrics: Metrics,
    cycles: usize,
    steps: usize,
    seed: u64,
    campaign: CampaignConfig,
    /// Report unhealthy campaigns (failed/panicked/timed-out jobs) but
    /// still exit 0.
    keep_going: bool,
}

fn parse_list(spec: &str) -> Vec<String> {
    spec.split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn parse_backends(spec: &str) -> Result<Vec<Backend>, String> {
    parse_list(spec)
        .iter()
        .map(|name| Backend::parse(name).ok_or_else(|| format!("unknown backend `{name}`")))
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return Err("missing command".into());
    }
    let command = argv[0].clone();
    // `campaign` builds its designs in-process; every other command reads
    // a FIRRTL file as its second argument
    let takes_file = command != "campaign";
    if takes_file && argv.len() < 2 {
        return Err("missing command or file".into());
    }
    let mut args = Args {
        command,
        file: if takes_file {
            argv[1].clone()
        } else {
            String::new()
        },
        metrics: Metrics::line_only(),
        cycles: 1000,
        steps: 20,
        seed: 0,
        campaign: CampaignConfig::default(),
        keep_going: false,
    };
    args.campaign.metrics = args.metrics;
    let mut i = if takes_file { 2 } else { 1 };
    while i < argv.len() {
        let flag = argv[i].as_str();
        // boolean flags take no value
        if flag == "--keep-going" {
            args.keep_going = true;
            i += 1;
            continue;
        }
        if flag == "--no-sim-opt" {
            args.campaign.sim_options.optimize = false;
            i += 1;
            continue;
        }
        if flag == "--no-sim-partition" {
            args.campaign.sim_options.partition = false;
            i += 1;
            continue;
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--metrics" => {
                args.metrics = parse_metrics(value)?;
                args.campaign.metrics = args.metrics;
            }
            "--cycles" => args.cycles = value.parse().map_err(|_| "bad --cycles")?,
            "--steps" => args.steps = value.parse().map_err(|_| "bad --steps")?,
            "--seed" => args.seed = value.parse().map_err(|_| "bad --seed")?,
            "--designs" => args.campaign.designs = parse_list(value),
            "--backends" => args.campaign.backends = parse_backends(value)?,
            "--shards" => args.campaign.shards = value.parse().map_err(|_| "bad --shards")?,
            "--scale" => args.campaign.scale = value.parse().map_err(|_| "bad --scale")?,
            "--workers" => args.campaign.workers = value.parse().map_err(|_| "bad --workers")?,
            "--plateau" => args.campaign.plateau = value.parse().map_err(|_| "bad --plateau")?,
            "--shard-dir" => args.campaign.shard_dir = Some(value.into()),
            "--format" => {
                args.campaign.format = match value.as_str() {
                    "json" => ShardFormat::Json,
                    "bin" | "binary" => ShardFormat::Binary,
                    other => return Err(format!("unknown shard format `{other}`")),
                }
            }
            "--bmc-steps" => {
                args.campaign.bmc_steps = value.parse().map_err(|_| "bad --bmc-steps")?
            }
            "--max-retries" => {
                args.campaign.max_retries = value.parse().map_err(|_| "bad --max-retries")?
            }
            "--job-fuel" => {
                args.campaign.job_fuel = Some(value.parse().map_err(|_| "bad --job-fuel")?)
            }
            "--fault-plan" => {
                let plan = FaultPlan::parse(value).map_err(|e| format!("--fault-plan: {e}"))?;
                args.campaign.faults = (!plan.is_empty()).then(|| Arc::new(plan));
            }
            "--db" => args.campaign.db_dir = Some(value.into()),
            "--db-label" => args.campaign.db_label = value.clone(),
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    Ok(args)
}

/// The `rtlcov db <verb>` family: the database has its own argument
/// shape (no FIRRTL file, selector flags), so it bypasses [`Args`].
fn run_db(argv: &[String]) -> Result<(), String> {
    let verb = argv.first().ok_or("db: missing subcommand")?.as_str();
    let mut db_dir: Option<PathBuf> = None;
    let mut shard_dir: Option<PathBuf> = None;
    let mut label = String::from("campaign");
    let mut select = String::new();
    let mut sel_a: Option<String> = None;
    let mut sel_b: Option<String> = None;
    let mut addr = String::from("127.0.0.1:8722");
    let mut max_requests: Option<usize> = None;
    let mut i = 1;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--db" => db_dir = Some(value.into()),
            "--shard-dir" => shard_dir = Some(value.into()),
            "--label" => label = value.clone(),
            "--select" => select = value.clone(),
            "--a" => sel_a = Some(value.clone()),
            "--b" => sel_b = Some(value.clone()),
            "--addr" => addr = value.clone(),
            "--max-requests" => {
                max_requests = Some(value.parse().map_err(|_| "bad --max-requests")?)
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    let db_dir = db_dir.ok_or("db: --db DIR is required")?;
    let mut db = CoverageDb::open(&db_dir).map_err(|e| e.to_string())?;
    match verb {
        "ingest" => {
            let shard_dir = shard_dir.ok_or("db ingest: --shard-dir DIR is required")?;
            // scan auto-detects the on-disk format per file
            let (shards, rejected) = ShardStore::new(&shard_dir, ShardFormat::Binary).scan();
            let (mut committed, mut deduplicated) = (0u64, 0u64);
            for shard in &shards {
                let key = RunKey {
                    design: shard.job.design.clone(),
                    workload: format!("s{}", shard.job.shard),
                    backend: shard.job.backend.name().to_string(),
                    label: label.clone(),
                };
                let outcome = db.ingest(&key, &shard.map).map_err(|e| e.to_string())?;
                if outcome.deduplicated {
                    deduplicated += 1;
                } else {
                    committed += 1;
                }
            }
            println!(
                "ingested {committed} new run(s), {deduplicated} already committed, {} rejected file(s)",
                rejected.len()
            );
            for (path, err) in rejected {
                eprintln!("  rejected {}: {err}", path.display());
            }
        }
        "query" => {
            let sel = Selector::parse(&select)?;
            let ids = db.select(&sel);
            let merged = db.merged_ids(&ids).map_err(|e| e.to_string())?;
            println!("runs merged: {ids:?}");
            print!("{merged}");
        }
        "holes" => {
            let sel = Selector::parse(&select)?;
            let holes = db.holes(&sel).map_err(|e| e.to_string())?;
            println!("{} hole(s)", holes.len());
            for name in holes {
                println!("  {name}");
            }
        }
        "diff" => {
            let a = Selector::parse(&sel_a.ok_or("db diff: --a SPEC is required")?)?;
            let b = Selector::parse(&sel_b.ok_or("db diff: --b SPEC is required")?)?;
            let diff = db.diff(&a, &b).map_err(|e| e.to_string())?;
            let count = |c: Option<u64>| c.map_or("-".to_string(), |v| v.to_string());
            println!("{} differing point(s)", diff.len());
            for entry in diff {
                println!(
                    "  {:<48} a={} b={}",
                    entry.name,
                    count(entry.a),
                    count(entry.b)
                );
            }
        }
        "gc" => {
            let removed = db.gc().map_err(|e| e.to_string())?;
            println!("removed {} unreferenced file(s)", removed.len());
            for path in removed {
                println!("  {}", path.display());
            }
        }
        "serve" => {
            let server = Server::bind(&addr).map_err(|e| e.to_string())?;
            let bound = server.local_addr().map_err(|e| e.to_string())?;
            println!("serving coverage db {} on http://{bound}", db_dir.display());
            server
                .serve(&mut db, max_requests)
                .map_err(|e| e.to_string())?;
        }
        other => return Err(format!("unknown db subcommand `{other}`")),
    }
    Ok(())
}

fn instrument(args: &Args) -> Result<Instrumented, String> {
    let src = std::fs::read_to_string(&args.file)
        .map_err(|e| format!("cannot read `{}`: {e}", args.file))?;
    let circuit = rtlcov::firrtl::parser::parse(&src).map_err(|e| e.to_string())?;
    CoverageCompiler::new(args.metrics)
        .run(circuit)
        .map_err(|e| e.to_string())
}

fn run(args: &Args) -> Result<(), String> {
    if args.command == "campaign" {
        let result = run_campaign(&args.campaign).map_err(|e| e.to_string())?;
        print!("{}", campaign_report::summary(&result));
        print!(
            "{}",
            campaign_report::render(&result, args.campaign.metrics)
        );
        println!("{}", campaign_report::health(&result));
        if !result.healthy() && !args.keep_going {
            return Err("campaign unhealthy (rerun with --keep-going to tolerate)".into());
        }
        return Ok(());
    }
    let inst = instrument(args)?;
    match args.command.as_str() {
        "instrument" => {
            print!("{}", rtlcov::firrtl::printer::print_circuit(&inst.circuit));
        }
        "verilog" => {
            print!("{}", rtlcov::firrtl::verilog::emit_verilog(&inst.circuit));
        }
        "run" => {
            use rand::{Rng, SeedableRng};
            let mut sim = CompiledSim::new(&inst.circuit).map_err(|e| e.to_string())?;
            let flat =
                rtlcov::sim::elaborate::elaborate(&inst.circuit).map_err(|e| e.to_string())?;
            let mut rng = rand::rngs::StdRng::seed_from_u64(args.seed);
            sim.reset(2);
            for _ in 0..args.cycles {
                for name in &flat.inputs {
                    if name != "reset" {
                        sim.poke(name, rng.gen());
                    }
                }
                sim.step();
            }
            let counts = sim.cover_counts();
            println!("== raw counts ==\n{counts}");
            if args.metrics.line {
                println!(
                    "{}",
                    LineReport::build(&inst.circuit, &inst.artifacts.line, &counts).render()
                );
            }
            if args.metrics.toggle.is_some() {
                println!(
                    "{}",
                    ToggleReport::build(&inst.circuit, &inst.artifacts.toggle, &counts).render()
                );
            }
            if args.metrics.fsm {
                println!(
                    "{}",
                    FsmReport::build(&inst.circuit, &inst.artifacts.fsm, &counts).render()
                );
            }
            if args.metrics.ready_valid {
                println!(
                    "{}",
                    ReadyValidReport::build(&inst.circuit, &inst.artifacts.ready_valid, &counts)
                        .render()
                );
            }
        }
        "bmc" => {
            let flat =
                rtlcov::sim::elaborate::elaborate(&inst.circuit).map_err(|e| e.to_string())?;
            let results = rtlcov::formal::bmc::check_covers(
                &flat,
                rtlcov::formal::bmc::BmcOptions {
                    max_steps: args.steps,
                    ..Default::default()
                },
            )
            .map_err(|e| e.to_string())?;
            for r in results {
                use rtlcov::formal::bmc::CoverOutcome;
                match r.outcome {
                    CoverOutcome::Reached { step, .. } => {
                        println!("{:<40} reached @ step {step}", r.name)
                    }
                    CoverOutcome::UnreachableWithin(k) => {
                        println!("{:<40} UNREACHABLE within {k}", r.name)
                    }
                    CoverOutcome::Unknown => println!("{:<40} unknown", r.name),
                }
            }
        }
        other => return Err(format!("unknown command `{other}`")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("db") {
        return match run_db(&argv[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

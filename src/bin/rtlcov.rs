//! `rtlcov` — command-line front door to the coverage system.
//!
//! ```text
//! rtlcov instrument <file.fir> [--metrics line,toggle,fsm,rv]        print instrumented FIRRTL
//! rtlcov run <file.fir> [--metrics ...] [--cycles N] [--seed S]      simulate with random inputs, print reports
//! rtlcov bmc <file.fir> [--metrics ...] [--steps K]                  formal cover reachability
//! rtlcov verilog <file.fir>                                          emit structural Verilog
//! ```

use rtlcov::core::instrument::{CoverageCompiler, Instrumented, Metrics};
use rtlcov::core::passes::toggle::ToggleOptions;
use rtlcov::core::report::{
    fsm::FsmReport, line::LineReport, ready_valid::ReadyValidReport, toggle::ToggleReport,
};
use rtlcov::sim::{compiled::CompiledSim, Simulator};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rtlcov instrument <file.fir> [--metrics line,toggle,fsm,rv]\n  \
         rtlcov run <file.fir> [--metrics ...] [--cycles N] [--seed S]\n  \
         rtlcov bmc <file.fir> [--metrics ...] [--steps K]\n  \
         rtlcov verilog <file.fir>"
    );
    ExitCode::from(2)
}

fn parse_metrics(spec: &str) -> Result<Metrics, String> {
    let mut m = Metrics::none();
    for part in spec.split(',').filter(|s| !s.is_empty()) {
        match part {
            "line" => m.line = true,
            "toggle" => m.toggle = Some(ToggleOptions::default()),
            "toggle-regs" => m.toggle = Some(ToggleOptions::regs_only()),
            "fsm" => m.fsm = true,
            "rv" | "ready-valid" => m.ready_valid = true,
            "all" => m = Metrics::all(),
            other => return Err(format!("unknown metric `{other}`")),
        }
    }
    Ok(m)
}

struct Args {
    command: String,
    file: String,
    metrics: Metrics,
    cycles: usize,
    steps: usize,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.len() < 2 {
        return Err("missing command or file".into());
    }
    let mut args = Args {
        command: argv[0].clone(),
        file: argv[1].clone(),
        metrics: Metrics::line_only(),
        cycles: 1000,
        steps: 20,
        seed: 0,
    };
    let mut i = 2;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = argv.get(i + 1).ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--metrics" => args.metrics = parse_metrics(value)?,
            "--cycles" => args.cycles = value.parse().map_err(|_| "bad --cycles")?,
            "--steps" => args.steps = value.parse().map_err(|_| "bad --steps")?,
            "--seed" => args.seed = value.parse().map_err(|_| "bad --seed")?,
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    Ok(args)
}

fn instrument(args: &Args) -> Result<Instrumented, String> {
    let src = std::fs::read_to_string(&args.file)
        .map_err(|e| format!("cannot read `{}`: {e}", args.file))?;
    let circuit = rtlcov::firrtl::parser::parse(&src).map_err(|e| e.to_string())?;
    CoverageCompiler::new(args.metrics).run(circuit).map_err(|e| e.to_string())
}

fn run(args: &Args) -> Result<(), String> {
    let inst = instrument(args)?;
    match args.command.as_str() {
        "instrument" => {
            print!("{}", rtlcov::firrtl::printer::print_circuit(&inst.circuit));
        }
        "verilog" => {
            print!("{}", rtlcov::firrtl::verilog::emit_verilog(&inst.circuit));
        }
        "run" => {
            use rand::{Rng, SeedableRng};
            let mut sim = CompiledSim::new(&inst.circuit).map_err(|e| e.to_string())?;
            let flat =
                rtlcov::sim::elaborate::elaborate(&inst.circuit).map_err(|e| e.to_string())?;
            let mut rng = rand::rngs::StdRng::seed_from_u64(args.seed);
            sim.reset(2);
            for _ in 0..args.cycles {
                for name in &flat.inputs {
                    if name != "reset" {
                        sim.poke(name, rng.gen());
                    }
                }
                sim.step();
            }
            let counts = sim.cover_counts();
            println!("== raw counts ==\n{counts}");
            if args.metrics.line {
                println!("{}", LineReport::build(&inst.circuit, &inst.artifacts.line, &counts).render());
            }
            if args.metrics.toggle.is_some() {
                println!("{}", ToggleReport::build(&inst.circuit, &inst.artifacts.toggle, &counts).render());
            }
            if args.metrics.fsm {
                println!("{}", FsmReport::build(&inst.circuit, &inst.artifacts.fsm, &counts).render());
            }
            if args.metrics.ready_valid {
                println!(
                    "{}",
                    ReadyValidReport::build(&inst.circuit, &inst.artifacts.ready_valid, &counts)
                        .render()
                );
            }
        }
        "bmc" => {
            let flat =
                rtlcov::sim::elaborate::elaborate(&inst.circuit).map_err(|e| e.to_string())?;
            let results = rtlcov::formal::bmc::check_covers(
                &flat,
                rtlcov::formal::bmc::BmcOptions {
                    max_steps: args.steps,
                    ..Default::default()
                },
            )
            .map_err(|e| e.to_string())?;
            for r in results {
                use rtlcov::formal::bmc::CoverOutcome;
                match r.outcome {
                    CoverOutcome::Reached { step, .. } => {
                        println!("{:<40} reached @ step {step}", r.name)
                    }
                    CoverOutcome::UnreachableWithin(k) => {
                        println!("{:<40} UNREACHABLE within {k}", r.name)
                    }
                    CoverOutcome::Unknown => println!("{:<40} unknown", r.name),
                }
            }
        }
        other => return Err(format!("unknown command `{other}`")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

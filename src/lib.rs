//! # rtlcov
//!
//! A from-scratch Rust reproduction of *Simulator Independent Coverage for
//! RTL Hardware Languages* (ASPLOS 2023): automated coverage metrics
//! implemented as compiler passes over a FIRRTL-subset IR, lowered to a
//! single `cover` primitive that five very different backends implement —
//! three software simulators, an emulated FPGA-accelerated simulator with
//! coverage scan chains, and a SAT-based formal engine.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`firrtl`] — IR, parser, Chisel-like builder, lowering passes;
//! * [`core`] — the coverage passes, report generators, and the
//!   `CoverageMap` interchange format (the paper's contribution);
//! * [`sim`] — interpreter / compiled / activity-driven simulators;
//! * [`fpga`] — scan-chain pass, emulated FPGA host, resource model;
//! * [`formal`] — CDCL SAT solver + bounded model checking;
//! * [`fuzz`] — AFL-style coverage-guided fuzzing;
//! * [`designs`] — the benchmark circuits (riscv-mini analog, TLRAM, ...);
//! * [`campaign`] — parallel multi-backend coverage campaigns with
//!   sharded merging and saturation-aware scheduling;
//! * [`db`] — embedded append-only coverage database: checksummed
//!   segments, string interning, memoized merge queries, HTTP serving.
//!
//! Start with `examples/quickstart.rs`.

#![warn(missing_docs)]

pub use rtlcov_campaign as campaign;
pub use rtlcov_core as core;
pub use rtlcov_db as db;
pub use rtlcov_designs as designs;
pub use rtlcov_firrtl as firrtl;
pub use rtlcov_formal as formal;
pub use rtlcov_fpga as fpga;
pub use rtlcov_fuzz as fuzz;
pub use rtlcov_sim as sim;

//! Vendored drop-in subset of the `criterion` API.
//!
//! This environment has no network access to crates.io, so the workspace
//! vendors the slice of criterion its benches use: [`Criterion`],
//! `benchmark_group` / `sample_size` / `bench_function` / `finish`, the
//! [`criterion_group!`] / [`criterion_main!`] macros, and [`black_box`].
//! Timing is a plain mean over the sample count — enough to compare the
//! paper's configurations against each other, with none of criterion's
//! statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("\n== {} ==", name.into());
        BenchmarkGroup {
            _criterion: self,
            sample_size: 100,
        }
    }

    /// Run a standalone benchmark (ungrouped).
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        self.benchmark_group(name.to_string())
            .bench_function("run", f);
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        // one untimed warm-up pass, then the timed samples
        f(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / bencher.samples.len().max(1) as u32;
        println!(
            "{name:<40} {mean:>12.2?} / iter ({} samples)",
            bencher.samples.len()
        );
        self
    }

    /// End the group (printing is already done incrementally).
    pub fn finish(&mut self) {}
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one execution of `routine`.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running each group produced by [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_sampled_benchmarks() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("test-group");
            group.sample_size(5);
            group.bench_function("counting", |b| b.iter(|| calls += 1));
            group.finish();
        }
        // one warm-up call plus five samples
        assert_eq!(calls, 6);
    }

    criterion_group!(example_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.benchmark_group("noop")
            .sample_size(1)
            .bench_function("nothing", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn macros_compose() {
        example_group();
    }
}

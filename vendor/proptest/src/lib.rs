//! Vendored drop-in subset of the `proptest` API.
//!
//! This environment has no network access to crates.io, so the workspace
//! vendors the slice of proptest its tests use: the [`proptest!`] macro
//! over named `arg in strategy` bindings, integer-range and `any::<T>()`
//! strategies, a small regex-subset string strategy, tuple and
//! `prop::collection::vec` combinators, and the `prop_assert*` /
//! [`prop_assume!`] macros. Cases are generated deterministically; there
//! is no shrinking — a failing case panics with the generated inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Outcome of one case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic per-case generator handed to strategies.
pub type TestRng = StdRng;

/// Build the RNG for one case of one property.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name so distinct properties see distinct streams
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15))
}

/// A value generator (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for any value of a type (the `Standard` distribution).
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy producing uniformly random values of `T`.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

// ---------------------------------------------------------------- regex --

/// One parsed atom of the regex subset: a set of candidate chars plus a
/// repetition range.
struct RegexAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_regex(pattern: &str) -> Vec<RegexAtom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match it.next() {
                        Some(']') => break,
                        Some('-') if prev.is_some() && it.peek() != Some(&']') => {
                            let lo = prev.take().expect("checked");
                            let hi = it.next().expect("checked peek");
                            for x in lo as u32 + 1..=hi as u32 {
                                set.push(char::from_u32(x).expect("ascii class"));
                            }
                        }
                        Some(ch) => {
                            prev = Some(ch);
                            set.push(ch);
                        }
                        None => panic!("unterminated char class in `{pattern}`"),
                    }
                }
                set
            }
            '\\' => vec![it.next().expect("dangling escape")],
            ch => vec![ch],
        };
        let (min, max) = if it.peek() == Some(&'{') {
            it.next();
            let spec: String = it.by_ref().take_while(|&c| c != '}').collect();
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().expect("regex repeat bound"),
                    hi.parse().expect("regex repeat bound"),
                ),
                None => {
                    let n = spec.parse().expect("regex repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(RegexAtom { chars, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_regex(self) {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                out.push(atom.chars[rng.gen_range(0..atom.chars.len())]);
            }
        }
        out
    }
}

// --------------------------------------------------------------- tuples --

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                $(let $v = $s.generate(rng);)+
                ($($v,)+)
            }
        }
    };
}
impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);

// ---------------------------------------------------------- collections --

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A size specification for [`vec`].
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `element` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.min..=self.size.max);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace used inside `proptest!` bodies.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };
}

/// Drive one property: generate `cases` inputs and run the body on each.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) when the body reports a
/// failed `prop_assert*!`.
pub fn run_property(
    test_name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> (String, TestCaseResult),
) {
    let mut rejected = 0u32;
    for i in 0..config.cases {
        let mut rng = case_rng(test_name, i);
        let (inputs, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => {}
            Err(TestCaseError::Reject) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{test_name}` failed at case {i}: {msg}\n  inputs: {inputs}")
            }
        }
    }
    if rejected == config.cases && config.cases > 0 {
        panic!("property `{test_name}` rejected every generated case");
    }
}

/// The property-test entry macro (subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_property(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), rng);)*
                let inputs = {
                    let parts: Vec<String> = vec![
                        $(format!("{} = {:?}", stringify!($arg), &$arg)),*
                    ];
                    parts.join(", ")
                };
                let case_body = || -> $crate::TestCaseResult {
                    $body
                    Ok(())
                };
                (inputs, case_body())
            });
        }
    )*};
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::Fail(format!(
                        "assertion `left == right` failed\n  left: {:?}\n right: {:?}",
                        l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::Fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)*), l, r
                    )));
                }
            }
        }
    };
}

/// Skip cases that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_inclusive_and_exclusive(a in 1u32..=8, b in 0usize..4) {
            prop_assert!((1..=8).contains(&a));
            prop_assert!(b < 4);
        }

        #[test]
        fn regex_subset_shapes(s in "[a-d]", t in "[a-f]{1,3}") {
            prop_assert_eq!(s.len(), 1);
            prop_assert!(s.chars().all(|c| ('a'..='d').contains(&c)));
            prop_assert!((1..=3).contains(&t.len()));
            prop_assert!(t.chars().all(|c| ('a'..='f').contains(&c)));
        }

        #[test]
        fn tuples_and_vecs(pairs in prop::collection::vec(("[a-b]", 0u64..10), 0..5)) {
            prop_assert!(pairs.len() < 5);
            for (s, n) in &pairs {
                prop_assert!(s == "a" || s == "b");
                prop_assert!(*n < 10);
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_inputs() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn config_with_cases_is_honored() {
        let mut runs = 0;
        crate::run_property("counting", &ProptestConfig::with_cases(17), |_| {
            runs += 1;
            (String::new(), Ok(()))
        });
        assert_eq!(runs, 17);
    }
}

//! Vendored drop-in subset of the `rand` 0.8 API.
//!
//! This environment has no network access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: [`rngs::StdRng`]
//! seeded through [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen`, `gen_range`, and `gen_bool`. The generator is xoshiro256**
//! seeded by SplitMix64 — deterministic for a given seed, which is all the
//! workloads and tests rely on (they assert behavioral properties, never
//! exact streams).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution analog).
pub trait Standard: Sized {
    /// Sample a uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`; `high` is inclusive when
    /// `inclusive` is set.
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Draw uniformly from `[0, span)` without modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as u64;
                let hi = high as u64;
                assert!(if inclusive { lo <= hi } else { lo < hi }, "empty gen_range");
                let span = hi - lo + inclusive as u64;
                if span == 0 {
                    // inclusive full-u64 domain
                    return rng.next_u64() as $t;
                }
                (lo + uniform_u64(rng, span)) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                // shift to unsigned space to avoid overflow at the extremes
                let lo = (low as i64 as u64).wrapping_add(1 << 63);
                let hi = (high as i64 as u64).wrapping_add(1 << 63);
                assert!(if inclusive { lo <= hi } else { lo < hi }, "empty gen_range");
                let span = hi - lo + inclusive as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo + uniform_u64(rng, span)).wrapping_sub(1 << 63) as i64 as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

/// Range argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly random value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in the given range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T: SampleUniform, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Expand a `u64` seed into full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand`'s
    /// `StdRng`; same API, different — but still high-quality — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1..=35u8);
            assert!((1..=35).contains(&w));
            let s = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn works_through_mut_reference() {
        fn takes_impl(rng: &mut impl Rng) -> u64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(4);
        takes_impl(&mut rng);
        takes_impl(&mut &mut rng);
    }
}
